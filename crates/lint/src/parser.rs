//! Token stream → item tree: modules, function signatures, impl/trait
//! blocks, `use` imports, struct fields, and call/method-call
//! expressions.
//!
//! Like the lexer underneath it, the parser is *total*: any token
//! stream (including garbage from the fuzzer) produces a `ParsedFile`
//! without panicking — unmatched braces, truncated signatures and
//! stray keywords degrade to "no item recorded", never to an error.
//! It is deliberately not a full Rust grammar (no `syn` in this build
//! environment); it recovers exactly the structure the call-graph and
//! taint passes need:
//!
//! - every `fn` with its module path, enclosing `impl`/`trait` block,
//!   signature and body token ranges, and source line span;
//! - every call site inside a body: `path::to::f(..)` as a resolved
//!   path, `recv.method(..)` as a bare method name (the receiver type
//!   is unknown at this level — the call graph adds a conservative
//!   fallback edge for those);
//! - `use` imports (for resolving unqualified calls across modules);
//! - struct fields whose declared type is an unordered container
//!   (`HashMap`/`HashSet`), so `self.field.iter()` can be recognized
//!   by the taint pass.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;
use std::ops::Range;

/// A function item recovered from one source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// In-file module path (nested `mod` names), outermost first.
    pub modules: Vec<String>,
    /// `Self` type name when the fn sits in an `impl` block.
    pub impl_type: Option<String>,
    /// Trait name when the fn sits in an `impl Trait for Type` block
    /// or is a default method in a `trait Trait { ... }` declaration.
    pub trait_name: Option<String>,
    /// The function's own name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (or the last body
    /// token when the input is truncated).
    pub end_line: u32,
    /// Signature tokens (exclusive of `fn` and the body braces), as a
    /// range into the comment-free token stream the parser consumed.
    pub sig: Range<usize>,
    /// Body tokens (exclusive of the outer braces).
    pub body: Range<usize>,
    /// Call sites inside the body, in token order.
    pub calls: Vec<CallSite>,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the callee name.
    pub line: u32,
    /// What is being called.
    pub callee: Callee,
}

/// The callee of a call expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `f(..)` or `a::b::f(..)` — the path segments as written.
    Path(Vec<String>),
    /// `recv.method(..)` — receiver type unknown; the second field is
    /// the receiver hint: the identifier (variable or `self.field`
    /// field name) immediately before the dot, when there is one.
    Method(String, Option<String>),
}

/// A flattened `use` import: `alias` (the last segment or the `as`
/// name) and the full path it brings into scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Name the import binds in this file.
    pub alias: String,
    /// Full path segments, as written (leading `crate`/`self`/`super`
    /// kept).
    pub path: Vec<String>,
}

/// Everything the semantic passes need from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every recovered function, in source order.
    pub functions: Vec<FnItem>,
    /// Flattened `use` imports.
    pub imports: Vec<UseImport>,
    /// Struct field names declared with an unordered container type
    /// anywhere in this file (file-scoped approximation of field
    /// types).
    pub unordered_fields: BTreeSet<String>,
}

/// Keywords that can never be a call target or path segment start.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// Whether `w` is a Rust keyword (and therefore never a call target,
/// path segment, or indexable expression head).
pub fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
}

/// Parses a comment-free token stream into the item tree. Total:
/// never panics, on any input.
pub fn parse(code: &[Token]) -> ParsedFile {
    let mut p = Parser {
        code,
        out: ParsedFile::default(),
    };
    p.items(0, code.len(), &mut Vec::new(), None);
    for f in &mut p.out.functions {
        f.calls = extract_calls(code, f.body.clone());
    }
    p.out
}

/// The enclosing `impl`/`trait` context while walking items.
#[derive(Clone)]
struct ImplCtx {
    impl_type: Option<String>,
    trait_name: Option<String>,
}

struct Parser<'a> {
    code: &'a [Token],
    out: ParsedFile,
}

impl Parser<'_> {
    fn kind(&self, i: usize) -> Option<&TokenKind> {
        self.code.get(i).map(|t| &t.kind)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.kind(i) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.kind(i), Some(TokenKind::Punct(p)) if *p == c)
    }

    fn line(&self, i: usize) -> u32 {
        self.code.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Index one past the `{ ... }` group opening at `open` (which must
    /// point at `{`); saturates at `end` on unbalanced input.
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match self.kind(i) {
                Some(TokenKind::Punct('{')) => depth += 1,
                Some(TokenKind::Punct('}')) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Skips a balanced `< ... >` group opening at `open`; returns the
    /// index one past the closing `>`. Tolerates `>>` (two tokens) and
    /// unbalanced input.
    fn skip_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match self.kind(i) {
                Some(TokenKind::Punct('<')) => depth += 1,
                Some(TokenKind::Punct('>')) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                // `-> T` inside generic defaults: the `-` then `>` pair
                // would miscount; treat `->` as opaque.
                Some(TokenKind::Punct('-')) if self.punct(i + 1, '>') => {
                    i += 2;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Walks items in `code[start..end]`, recursing into `mod`/`impl`/
    /// `trait` bodies and recording every `fn`.
    fn items(
        &mut self,
        start: usize,
        end: usize,
        modules: &mut Vec<String>,
        ctx: Option<&ImplCtx>,
    ) {
        let mut i = start;
        while i < end {
            match self.ident(i) {
                Some("mod") => {
                    if let Some(name) = self.ident(i + 1) {
                        let name = name.to_owned();
                        if self.punct(i + 2, '{') {
                            let close = self.matching_brace(i + 2, end);
                            modules.push(name);
                            self.items(i + 3, close.saturating_sub(1), modules, None);
                            modules.pop();
                            i = close;
                            continue;
                        }
                    }
                    i += 1;
                }
                Some("impl") => {
                    let (ctx2, open) = self.impl_header(i + 1, end);
                    if let Some(open) = open {
                        let close = self.matching_brace(open, end);
                        self.items(open + 1, close.saturating_sub(1), modules, Some(&ctx2));
                        i = close;
                        continue;
                    }
                    i += 1;
                }
                Some("trait") => {
                    if let Some(name) = self.ident(i + 1) {
                        let ctx2 = ImplCtx {
                            impl_type: None,
                            trait_name: Some(name.to_owned()),
                        };
                        let mut j = i + 2;
                        if self.punct(j, '<') {
                            j = self.skip_angles(j, end);
                        }
                        while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
                            j += 1;
                        }
                        if self.punct(j, '{') {
                            let close = self.matching_brace(j, end);
                            self.items(j + 1, close.saturating_sub(1), modules, Some(&ctx2));
                            i = close;
                            continue;
                        }
                    }
                    i += 1;
                }
                Some("fn") => {
                    i = self.fn_item(i, end, modules, ctx);
                }
                Some("use") => {
                    i = self.use_item(i + 1, end);
                }
                Some("struct") => {
                    i = self.struct_item(i + 1, end);
                }
                _ => i += 1,
            }
        }
    }

    /// Parses the header after an `impl` keyword: optional generics,
    /// a type (or trait) path, optionally `for Type`. Returns the
    /// context and the index of the opening `{`, if found.
    fn impl_header(&self, mut i: usize, end: usize) -> (ImplCtx, Option<usize>) {
        if self.punct(i, '<') {
            i = self.skip_angles(i, end);
        }
        let mut first: Option<String> = None;
        let mut second: Option<String> = None;
        let mut saw_for = false;
        while i < end && !self.punct(i, '{') && !self.punct(i, ';') {
            match self.ident(i) {
                Some("for") => saw_for = true,
                Some("where") => break,
                Some(w) if !is_keyword(w) => {
                    // Keep the last path segment before `for` / `{` as
                    // the name: `impl fmt::Display for Foo` → Display,
                    // Foo.
                    let slot = if saw_for { &mut second } else { &mut first };
                    *slot = Some(w.to_owned());
                }
                _ => {}
            }
            if self.punct(i, '<') {
                i = self.skip_angles(i, end);
                continue;
            }
            i += 1;
        }
        while i < end && !self.punct(i, '{') && !self.punct(i, ';') {
            i += 1;
        }
        let ctx = if saw_for {
            ImplCtx {
                impl_type: second,
                trait_name: first,
            }
        } else {
            ImplCtx {
                impl_type: first,
                trait_name: None,
            }
        };
        let open = if self.punct(i, '{') { Some(i) } else { None };
        (ctx, open)
    }

    /// Parses one `fn` item starting at the `fn` keyword; records it
    /// and returns the index one past its body (or past the `;` for a
    /// bodiless trait method / declaration).
    fn fn_item(
        &mut self,
        at: usize,
        end: usize,
        modules: &[String],
        ctx: Option<&ImplCtx>,
    ) -> usize {
        let Some(name) = self.ident(at + 1) else {
            return at + 1; // `fn(` — function-pointer type, not an item
        };
        let name = name.to_owned();
        let sig_start = at + 2;
        let mut i = sig_start;
        if self.punct(i, '<') {
            i = self.skip_angles(i, end);
        }
        // Parameters, return type, where clause: scan to the body `{`
        // or a terminating `;`, skipping balanced generics so `Fn() ->
        // Vec<T>` bounds can't derail the scan.
        while i < end && !self.punct(i, '{') && !self.punct(i, ';') {
            if self.punct(i, '<') {
                i = self.skip_angles(i, end);
                continue;
            }
            i += 1;
        }
        if !self.punct(i, '{') {
            return i.saturating_add(1); // bodiless: trait method decl
        }
        let close = self.matching_brace(i, end);
        let body = (i + 1)..close.saturating_sub(1);
        let end_line = self.line(
            close
                .saturating_sub(1)
                .min(self.code.len().saturating_sub(1)),
        );
        self.out.functions.push(FnItem {
            modules: modules.to_vec(),
            impl_type: ctx.and_then(|c| c.impl_type.clone()),
            trait_name: ctx.and_then(|c| c.trait_name.clone()),
            name,
            line: self.line(at),
            end_line: end_line.max(self.line(at)),
            sig: sig_start..i,
            body,
            calls: Vec::new(),
        });
        close
    }

    /// Parses a `use` tree starting after the `use` keyword, flattening
    /// `a::b::{c, d as e}` into one import per leaf. Globs are skipped.
    fn use_item(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        let mut prefix: Vec<String> = Vec::new();
        while i < end && !self.punct(i, ';') {
            match self.ident(i) {
                Some("as") => {
                    if let Some(alias) = self.ident(i + 1).map(str::to_owned) {
                        if let Some(last) = self.out.imports.last_mut() {
                            last.alias = alias;
                        }
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
                Some(seg) => {
                    let seg = seg.to_owned();
                    if self.punct(i + 1, ':') && self.punct(i + 2, ':') {
                        prefix.push(seg);
                        i += 3;
                    } else {
                        let mut path = prefix.clone();
                        path.push(seg.clone());
                        self.out.imports.push(UseImport { alias: seg, path });
                        i += 1;
                    }
                }
                None if self.punct(i, '{') => {
                    let close = self.matching_brace(i, end);
                    self.use_group(i + 1, close.saturating_sub(1), &prefix);
                    i = close;
                    // The group ends the tree for this prefix.
                    while i < end && !self.punct(i, ';') {
                        i += 1;
                    }
                }
                None => i += 1,
            }
        }
        i + 1
    }

    /// Flattens one `{ ... }` group of a use tree under `prefix`.
    fn use_group(&mut self, start: usize, end: usize, prefix: &[String]) {
        let mut i = start;
        let mut local: Vec<String> = Vec::new();
        while i < end {
            match self.ident(i) {
                Some("as") => {
                    if let Some(alias) = self.ident(i + 1).map(str::to_owned) {
                        if let Some(last) = self.out.imports.last_mut() {
                            last.alias = alias;
                        }
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
                Some(seg) => {
                    let seg = seg.to_owned();
                    if self.punct(i + 1, ':') && self.punct(i + 2, ':') {
                        local.push(seg);
                        i += 3;
                    } else {
                        let mut path: Vec<String> = prefix.to_vec();
                        path.extend(local.iter().cloned());
                        path.push(seg.clone());
                        self.out.imports.push(UseImport { alias: seg, path });
                        local.clear();
                        i += 1;
                    }
                }
                None if self.punct(i, '{') => {
                    let close = self.matching_brace(i, end);
                    let mut inner: Vec<String> = prefix.to_vec();
                    inner.extend(local.iter().cloned());
                    self.use_group(i + 1, close.saturating_sub(1), &inner);
                    local.clear();
                    i = close;
                }
                None => {
                    if self.punct(i, ',') {
                        local.clear();
                    }
                    i += 1;
                }
            }
        }
    }

    /// Records struct fields declared with an unordered container type.
    fn struct_item(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        if self.punct(i + 1, '<') {
            // `struct Name<...>`: skip the generics before the body.
            i = self.skip_angles(i + 1, end);
        }
        while i < end && !self.punct(i, '{') && !self.punct(i, ';') && !self.punct(i, '(') {
            i += 1;
        }
        if !self.punct(i, '{') {
            // Tuple struct or unit struct: no named fields.
            while i < end && !self.punct(i, ';') && !self.punct(i, '{') {
                i += 1;
            }
            return i + 1;
        }
        let close = self.matching_brace(i, end);
        let mut j = i + 1;
        while j < close {
            // `name : Type ,` at brace depth 1 — check the type tokens
            // up to the field-separating comma for HashMap/HashSet.
            if let (Some(field), true) = (self.ident(j), self.punct(j + 1, ':')) {
                if !self.punct(j + 2, ':') {
                    let field = field.to_owned();
                    let mut k = j + 2;
                    let mut depth = 0usize;
                    let mut unordered = false;
                    while k < close {
                        match self.kind(k) {
                            Some(TokenKind::Punct('<' | '(' | '[')) => depth += 1,
                            Some(TokenKind::Punct('>' | ')' | ']')) => {
                                depth = depth.saturating_sub(1)
                            }
                            Some(TokenKind::Punct(',')) if depth == 0 => break,
                            Some(TokenKind::Ident(s)) if s == "HashMap" || s == "HashSet" => {
                                unordered = true;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if unordered {
                        self.out.unordered_fields.insert(field);
                    }
                    j = k;
                    continue;
                }
            }
            j += 1;
        }
        close
    }
}

/// Extracts call sites from a body token range.
fn extract_calls(code: &[Token], body: Range<usize>) -> Vec<CallSite> {
    let kind = |i: usize| code.get(i).map(|t| &t.kind);
    let ident = |i: usize| match kind(i) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| matches!(kind(i), Some(TokenKind::Punct(p)) if *p == c);
    // Index one past a balanced `< ... >` turbofish group.
    let skip_angles = |open: usize, end: usize| -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match kind(i) {
                Some(TokenKind::Punct('<')) => depth += 1,
                Some(TokenKind::Punct('>')) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    };

    let mut calls = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let Some(w) = ident(i) else {
            i += 1;
            continue;
        };
        // `crate::`/`super::`/`self::`/`Self::` may head a call path;
        // any other keyword (or a bare `self`) never does.
        let starts_path = punct(i + 1, ':') && punct(i + 2, ':');
        let path_head_keyword = matches!(w, "crate" | "super" | "self" | "Self") && starts_path;
        if ((is_keyword(w) || w == "self") && !path_head_keyword)
            || ident(i.wrapping_sub(1)) == Some("fn")
        {
            i += 1;
            continue;
        }
        let line = code.get(i).map(|t| t.line).unwrap_or(0);
        // Method call: `recv.name(..)` or `recv.name::<T>(..)`.
        if i >= 1 && punct(i - 1, '.') {
            let mut j = i + 1;
            if punct(j, ':') && punct(j + 1, ':') && punct(j + 2, '<') {
                j = skip_angles(j + 2, body.end);
            }
            if punct(j, '(') {
                let recv = if i >= 2 { ident(i - 2) } else { None };
                calls.push(CallSite {
                    line,
                    callee: Callee::Method(w.to_owned(), recv.map(str::to_owned)),
                });
            }
            i += 1;
            continue;
        }
        // Path segment continuation is handled from the path head.
        if i >= 2 && punct(i - 1, ':') && punct(i - 2, ':') {
            i += 1;
            continue;
        }
        // Path call: `a::b::f(..)`, `f(..)`, `f::<T>(..)`.
        let mut segs = vec![w.to_owned()];
        let mut j = i + 1;
        loop {
            if punct(j, ':') && punct(j + 1, ':') {
                if punct(j + 2, '<') {
                    j = skip_angles(j + 2, body.end);
                    break;
                }
                if let Some(seg) = ident(j + 2) {
                    if is_keyword(seg) {
                        break;
                    }
                    segs.push(seg.to_owned());
                    j += 3;
                    continue;
                }
            }
            break;
        }
        let is_macro = punct(j, '!');
        if punct(j, '(') && !is_macro {
            calls.push(CallSite {
                line,
                callee: Callee::Path(segs),
            });
        }
        i += 1;
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> ParsedFile {
        let toks: Vec<Token> = tokenize(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment { .. }))
            .collect();
        parse(&toks)
    }

    fn qname(f: &FnItem) -> String {
        let mut parts: Vec<String> = f.modules.clone();
        if let Some(t) = &f.impl_type {
            parts.push(t.clone());
        } else if let Some(t) = &f.trait_name {
            parts.push(t.clone());
        }
        parts.push(f.name.clone());
        parts.join("::")
    }

    #[test]
    fn fns_in_modules_impls_and_traits() {
        let src = "
            fn free() {}
            mod inner {
                pub fn nested() {}
                impl Widget {
                    fn method(&self) {}
                }
            }
            impl fmt::Display for Gadget {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
            }
            trait Doer {
                fn act(&self) { self.helper(); }
                fn must(&self);
            }
        ";
        let got: Vec<String> = parse_src(src).functions.iter().map(qname).collect();
        assert_eq!(
            got,
            vec![
                "free",
                "inner::nested",
                "inner::Widget::method",
                "Gadget::fmt",
                "Doer::act"
            ]
        );
    }

    #[test]
    fn trait_impl_records_both_names() {
        let f = &parse_src("impl Classifier for Gbdt { fn fit(&mut self) {} }").functions[0];
        assert_eq!(f.impl_type.as_deref(), Some("Gbdt"));
        assert_eq!(f.trait_name.as_deref(), Some("Classifier"));
    }

    #[test]
    fn calls_paths_methods_and_turbofish() {
        let src = "
            fn f() {
                helper();
                a::b::deep(1, 2);
                Widget::build::<u32>();
                recv.method(x);
                self.field.chained::<T>(y);
                not_a_call! { body };
                let g: fn(u32) -> u32 = id;
            }
        ";
        let calls = parse_src(src).functions[0].calls.clone();
        let paths: Vec<Vec<String>> = calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Path(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        let methods: Vec<(String, Option<String>)> = calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Method(m, r) => Some((m.clone(), r.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            paths,
            vec![
                vec!["helper".to_owned()],
                vec!["a".to_owned(), "b".to_owned(), "deep".to_owned()],
                vec!["Widget".to_owned(), "build".to_owned()],
            ]
        );
        assert_eq!(
            methods,
            vec![
                ("method".to_owned(), Some("recv".to_owned())),
                ("chained".to_owned(), Some("field".to_owned())),
            ]
        );
    }

    #[test]
    fn use_trees_flatten_with_aliases() {
        let src = "use std::collections::{BTreeMap, HashMap as Map};\nuse crate::util::helper;\n";
        let imports = parse_src(src).imports;
        assert_eq!(
            imports,
            vec![
                UseImport {
                    alias: "BTreeMap".into(),
                    path: vec!["std".into(), "collections".into(), "BTreeMap".into()],
                },
                UseImport {
                    alias: "Map".into(),
                    path: vec!["std".into(), "collections".into(), "HashMap".into()],
                },
                UseImport {
                    alias: "helper".into(),
                    path: vec!["crate".into(), "util".into(), "helper".into()],
                },
            ]
        );
    }

    #[test]
    fn unordered_struct_fields_are_recorded() {
        let src = "
            struct Encoder<T> {
                forward: HashMap<T, usize>,
                reverse: Vec<T>,
            }
            struct Plain { n: usize }
        ";
        let parsed = parse_src(src);
        assert!(parsed.unordered_fields.contains("forward"));
        assert!(!parsed.unordered_fields.contains("reverse"));
        assert!(!parsed.unordered_fields.contains("n"));
    }

    #[test]
    fn bodiless_and_truncated_inputs_are_fine() {
        for src in [
            "fn f(",
            "fn",
            "impl {",
            "mod m {",
            "trait T { fn a(&self)",
            "struct S { x: HashMap<",
            "use a::{b::",
            "fn f() { g( }",
        ] {
            let _ = parse_src(src); // must not panic
        }
    }

    #[test]
    fn fn_spans_cover_the_body() {
        let src = "fn f() {\n    g();\n    h();\n}\n";
        let f = &parse_src(src).functions[0];
        assert_eq!(f.line, 1);
        assert_eq!(f.end_line, 4);
    }
}
