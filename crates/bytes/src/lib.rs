//! Shared little-endian byte codec for every hand-rolled binary format
//! in the workspace (checkpoint `.mfpa` files, compiled-model `.mfpac`
//! artifacts, future chunked-dataset codecs).
//!
//! Before this crate existed, `core::checkpoint` and `ml::compile`
//! each carried a private copy of the same writer/reader/FNV trio.
//! Centralizing them does two jobs:
//!
//! * **one truncation-safe implementation** — every read is
//!   bounds-checked and reports the failing offset instead of
//!   panicking, so arbitrarily corrupted input degrades to a
//!   structured error ("refuse, don't corrupt");
//! * **a canonical vocabulary for static analysis** — `mfpa-lint`'s
//!   d11 codec-symmetry rule recognizes exactly the method names
//!   defined here (`u8`/`u32`/`u64`/`i64`/`f64`/`counter`/`flag` and
//!   the reader-side `len`) when it checks that an encoder's write
//!   sequence mirrors its decoder's read sequence.
//!
//! Checksum framing lives here too ([`seal`]/[`unseal`]): the FNV-1a-64
//! footer is appended and verified *outside* the field sequence, so
//! encoders and decoders stay textually symmetric for d11.
//!
//! All integers are little-endian; floats travel as IEEE-754 bit
//! patterns (`f64::to_bits`) so round trips are exact.

/// FNV-1a 64-bit over `data`.
#[must_use]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append an FNV-1a-64 footer over `payload` and return the sealed
/// buffer. The inverse of [`unseal`].
#[must_use]
pub fn seal(mut payload: Vec<u8>) -> Vec<u8> {
    let checksum = fnv1a64(&payload);
    payload.extend_from_slice(&checksum.to_le_bytes());
    payload
}

/// Verify the trailing FNV-1a-64 footer of `data` and return the
/// payload with the footer stripped. Errors describe the failure
/// (too short / checksum mismatch) without panicking.
pub fn unseal(data: &[u8]) -> Result<&[u8], String> {
    if data.len() < 8 {
        return Err(format!(
            "{} bytes is too short to hold a checksum",
            data.len()
        ));
    }
    let (payload, footer) = data.split_at(data.len() - 8);
    let footer: [u8; 8] = footer
        .try_into()
        .map_err(|_| "checksum footer is not 8 bytes".to_string())?;
    let stored = u64::from_le_bytes(footer);
    let actual = fnv1a64(payload);
    if stored != actual {
        return Err(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        ));
    }
    Ok(payload)
}

/// Little-endian field writer. Each method appends one field; the
/// method set is the canonical write vocabulary d11 pairs against
/// [`ByteReader`]'s read vocabulary.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn counter(&mut self, v: usize) {
        self.u64(v as u64);
    }
    pub fn flag(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish the payload without a checksum footer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Finish the payload and append the FNV-1a-64 footer ([`seal`]).
    #[must_use]
    pub fn into_sealed(self) -> Vec<u8> {
        seal(self.buf)
    }
}

/// Truncation-safe little-endian field reader: every read is
/// bounds-checked and reports the failing offset instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Current offset, for error reporting by callers.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| format!("truncated at offset {}", self.pos))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        let b = self.take(1)?;
        b.first()
            .copied()
            .ok_or_else(|| format!("truncated at offset {}", self.pos))
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| format!("truncated at offset {}", self.pos))?;
        Ok(u32::from_le_bytes(b))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| format!("truncated at offset {}", self.pos))?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn i64(&mut self) -> Result<i64, String> {
        Ok(self.u64()? as i64)
    }

    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn counter(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("counter {v} overflows usize"))
    }

    pub fn flag(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid flag byte {other}")),
        }
    }

    /// A length prefix for a collection about to be decoded; bounded by
    /// the bytes actually remaining so a corrupted length cannot drive
    /// a huge allocation.
    pub fn len(&mut self, min_item_bytes: usize) -> Result<usize, String> {
        let n = self.counter()?;
        let remaining = self.data.len() - self.pos;
        if n.saturating_mul(min_item_bytes.max(1)) > remaining {
            return Err(format!(
                "length {n} exceeds the {remaining} bytes remaining"
            ));
        }
        Ok(n)
    }

    #[must_use]
    pub fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_field_kind() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 7);
        w.i64(-42);
        w.f64(std::f64::consts::PI);
        w.counter(123_456);
        w.flag(true);
        w.flag(false);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8(), Ok(0xAB));
        assert_eq!(r.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.u64(), Ok(u64::MAX - 7));
        assert_eq!(r.i64(), Ok(-42));
        assert_eq!(
            r.f64().map(f64::to_bits),
            Ok(std::f64::consts::PI.to_bits())
        );
        assert_eq!(r.counter(), Ok(123_456));
        assert_eq!(r.flag(), Ok(true));
        assert_eq!(r.flag(), Ok(false));
        assert!(r.done());
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let mut w = ByteWriter::new();
        w.u32(7);
        w.f64(1.5);
        w.counter(3);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let mut saw_err = false;
            for _ in 0..4 {
                if r.u32().is_err() || r.f64().is_err() || r.counter().is_err() {
                    saw_err = true;
                    break;
                }
            }
            assert!(saw_err, "truncation at {cut} went unnoticed");
        }
    }

    #[test]
    fn seal_unseal_roundtrip_and_reject() {
        let payload = b"field sequence".to_vec();
        let sealed = seal(payload.clone());
        assert_eq!(unseal(&sealed), Ok(payload.as_slice()));
        assert!(unseal(&sealed[..7]).is_err(), "short input must be refused");
        for bit in 0..sealed.len() * 8 {
            let mut bad = sealed.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(unseal(&bad).is_err(), "bit flip {bit} went unnoticed");
        }
    }

    #[test]
    fn len_prefix_rejects_lengths_larger_than_remaining() {
        let mut w = ByteWriter::new();
        w.counter(1_000_000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.len(8).is_err());
    }
}
