//! Fleet-scale online monitoring: sharded incremental ingestion with
//! crash-safe checkpoints, poison-drive quarantine and graceful
//! degradation.
//!
//! §IV Fig 20 deploys one [`DriveMonitor`] per client machine; the
//! server side of that picture is a monitoring service that keeps the
//! *whole fleet's* incremental state warm so the bimonthly model
//! iteration can re-score every drive instantly. [`FleetMonitor`] is
//! that service:
//!
//! * **Deterministic sharding** — each drive's state lives on the shard
//!   [`SerialNumber::shard`] assigns it; shards are processed on the
//!   deterministic parallel layer ([`mfpa_par`]), so every outcome —
//!   scores, quarantine sets, counters, checkpoint bytes — is
//!   bit-identical at any `MFPA_THREADS`.
//! * **Bounded reordering** — a per-drive window of
//!   [`FleetMonitorConfig::reorder_depth`] records absorbs the bounded
//!   out-of-order delivery a real collector produces before handing
//!   records to the strictly-sequential [`DriveMonitor`].
//! * **Crash-safe checkpoints** — every
//!   [`FleetMonitorConfig::checkpoint_interval`] batches the full state
//!   is snapshotted through [`crate::checkpoint`] (checksummed,
//!   versioned, atomically renamed); restoring the newest snapshot and
//!   replaying the remaining batches reproduces an uninterrupted run
//!   bit for bit.
//! * **Poison-record quarantine** — a drive whose deliveries repeatedly
//!   fail sanitization is quarantined with a structured
//!   [`CoreError::QuarantinedDrive`] cause and readmitted by
//!   deterministic tick-driven exponential backoff (never wall clock);
//!   drives that keep failing across
//!   [`FleetMonitorConfig::quarantine_max_strikes`] readmissions are
//!   quarantined permanently.
//! * **Graceful degradation** — under shard-queue overflow or a failed
//!   checkpoint write the monitor sheds *scoring sweeps* first and
//!   ingestion only at the bounded-queue limit, and every dropped
//!   record is counted in a [`ShardReport`]: nothing is ever dropped
//!   silently ([`ShardReport::is_conserved`]).

use std::collections::BTreeMap;
use std::path::PathBuf;

use mfpa_dataset::Matrix;
use mfpa_fleetsim::ArrivalEvent;
use mfpa_par::{ordered_map_mut, Workers};
use mfpa_telemetry::{DailyRecord, SerialNumber};

use crate::checkpoint;
use crate::deploy::DriveMonitor;
use crate::error::CoreError;
use crate::pipeline::TrainedMfpa;
use crate::sanitize::SanitizeConfig;

/// Configuration for a [`FleetMonitor`].
///
/// The defaults run a small deployment: 8 shards, a 4096-record shard
/// queue, an 8-record reorder window, 3-corrupt-record quarantine with
/// backoff 8/16/32 ticks then permanent, a scoring sweep every 16
/// batches and checkpointing disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMonitorConfig {
    /// Number of shards drive state is partitioned into
    /// ([`SerialNumber::shard`]). Must be at least 1.
    pub n_shards: usize,
    /// Bounded per-shard queue: records routed to one shard beyond this
    /// in a single batch are shed (or rejected under
    /// [`FleetMonitorConfig::strict_overflow`]). Must be at least 1.
    pub shard_queue_capacity: usize,
    /// Per-drive reordering window, in records: the monitor buffers up
    /// to this many records per drive and releases them in `(day,
    /// arrival)` order, absorbing bounded out-of-order delivery. `0`
    /// ingests immediately.
    pub reorder_depth: usize,
    /// Consecutive corrupt records from one drive before it is
    /// quarantined. Must be at least 1.
    pub quarantine_threshold: u32,
    /// Backoff of the first quarantine, in ticks (batches); strike `k`
    /// backs off `base << (k - 1)` ticks. Must be at least 1.
    pub quarantine_base_backoff: u64,
    /// Quarantine strikes after which a drive is quarantined
    /// permanently. Must be at least 1.
    pub quarantine_max_strikes: u32,
    /// Run a fleet scoring sweep every this many batches; `0` disables
    /// periodic sweeps ([`FleetMonitor::sweep_now`] still works).
    pub sweep_interval: u64,
    /// Write a checkpoint every this many batches; `0` disables
    /// checkpointing. When non-zero, [`FleetMonitorConfig::checkpoint_dir`]
    /// must be set.
    pub checkpoint_interval: u64,
    /// Directory checkpoints are written to (created on first write).
    pub checkpoint_dir: Option<PathBuf>,
    /// How many newest checkpoints to retain; older ones are pruned
    /// after each successful write. Clamped to at least 1.
    pub checkpoint_keep: usize,
    /// After an overload or checkpoint-write failure at tick `t`,
    /// scoring sweeps are shed through tick `t + degrade_cooldown`.
    pub degrade_cooldown: u64,
    /// When `true`, a batch overflowing any shard queue is rejected
    /// whole with [`CoreError::ShardOverflow`] before any state
    /// mutation; when `false` (the default) the overflow is shed and
    /// counted in [`ShardReport::shed_overflow`].
    pub strict_overflow: bool,
    /// Worker threads for shard processing (`0` = automatic, honouring
    /// `MFPA_THREADS`). Results are identical at any value.
    pub n_threads: usize,
    /// Online sanitization policy handed to each per-drive monitor.
    pub sanitize: SanitizeConfig,
}

impl Default for FleetMonitorConfig {
    fn default() -> Self {
        FleetMonitorConfig {
            n_shards: 8,
            shard_queue_capacity: 4096,
            reorder_depth: 8,
            quarantine_threshold: 3,
            quarantine_base_backoff: 8,
            quarantine_max_strikes: 4,
            sweep_interval: 16,
            checkpoint_interval: 0,
            checkpoint_dir: None,
            checkpoint_keep: 2,
            degrade_cooldown: 4,
            strict_overflow: false,
            n_threads: 0,
            sanitize: SanitizeConfig::default(),
        }
    }
}

impl FleetMonitorConfig {
    /// Sets the shard count.
    pub fn with_shards(mut self, n_shards: usize) -> Self {
        self.n_shards = n_shards;
        self
    }

    /// Sets the bounded per-shard queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.shard_queue_capacity = capacity;
        self
    }

    /// Sets the per-drive reordering window depth.
    pub fn with_reorder_depth(mut self, depth: usize) -> Self {
        self.reorder_depth = depth;
        self
    }

    /// Sets the quarantine policy: corrupt-streak threshold, base
    /// backoff in ticks, and the strike count that becomes permanent.
    pub fn with_quarantine(mut self, threshold: u32, base_backoff: u64, max_strikes: u32) -> Self {
        self.quarantine_threshold = threshold;
        self.quarantine_base_backoff = base_backoff;
        self.quarantine_max_strikes = max_strikes;
        self
    }

    /// Sets the scoring-sweep interval in batches (`0` disables).
    pub fn with_sweep_interval(mut self, interval: u64) -> Self {
        self.sweep_interval = interval;
        self
    }

    /// Enables checkpointing into `dir` every `interval` batches.
    pub fn with_checkpointing(mut self, dir: impl Into<PathBuf>, interval: u64) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_interval = interval;
        self
    }

    /// Sets how many newest checkpoints to retain.
    pub fn with_checkpoint_keep(mut self, keep: usize) -> Self {
        self.checkpoint_keep = keep;
        self
    }

    /// Sets the degradation cooldown in ticks.
    pub fn with_degrade_cooldown(mut self, cooldown: u64) -> Self {
        self.degrade_cooldown = cooldown;
        self
    }

    /// Sets the strict overflow policy (reject instead of shed).
    pub fn with_strict_overflow(mut self, strict: bool) -> Self {
        self.strict_overflow = strict;
        self
    }

    /// Sets the worker-thread count (`0` = automatic).
    pub fn with_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero shard count,
    /// queue capacity, quarantine threshold, backoff or strike limit,
    /// and for a checkpoint interval without a checkpoint directory.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.n_shards == 0 {
            return Err(CoreError::InvalidConfig(
                "n_shards must be at least 1".into(),
            ));
        }
        if self.shard_queue_capacity == 0 {
            return Err(CoreError::InvalidConfig(
                "shard_queue_capacity must be at least 1".into(),
            ));
        }
        if self.quarantine_threshold == 0 {
            return Err(CoreError::InvalidConfig(
                "quarantine_threshold must be at least 1".into(),
            ));
        }
        if self.quarantine_base_backoff == 0 {
            return Err(CoreError::InvalidConfig(
                "quarantine_base_backoff must be at least 1 tick".into(),
            ));
        }
        if self.quarantine_max_strikes == 0 {
            return Err(CoreError::InvalidConfig(
                "quarantine_max_strikes must be at least 1".into(),
            ));
        }
        if self.checkpoint_interval > 0 && self.checkpoint_dir.is_none() {
            return Err(CoreError::InvalidConfig(
                "checkpoint_interval > 0 requires a checkpoint_dir".into(),
            ));
        }
        Ok(())
    }
}

/// Per-shard ingestion accounting. Counters are cumulative over the
/// monitor's lifetime; `pending` and `drives` are gauges.
///
/// The conservation invariant ([`ShardReport::is_conserved`]) holds at
/// every batch boundary: every received record is accounted for as
/// accepted, rejected (corrupt / late), shed, dropped-in-quarantine or
/// still pending in a reorder window — nothing is dropped silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Records routed to this shard (including ones later shed).
    pub received: u64,
    /// Records accepted into a drive monitor (duplicates answered
    /// idempotently count as accepted).
    pub accepted: u64,
    /// Records the drive monitor quarantined as corrupt (sentinel /
    /// out-of-range / unimputable pages).
    pub rejected_corrupt: u64,
    /// Records that were still out of order after the reordering window
    /// did its best.
    pub rejected_late: u64,
    /// Records shed because the shard's bounded queue overflowed.
    pub shed_overflow: u64,
    /// Records dropped because their drive was quarantined.
    pub dropped_quarantined: u64,
    /// Quarantines imposed.
    pub quarantines: u64,
    /// Quarantines lifted by a readmission probe.
    pub readmissions: u64,
    /// Records currently buffered in reorder windows (gauge).
    pub pending: u64,
    /// Drives with state on this shard (gauge).
    pub drives: u64,
}

impl ShardReport {
    /// Accumulates `other` into `self` (counters add; gauges add, which
    /// is correct when merging disjoint shards).
    pub fn merge(&mut self, other: &ShardReport) {
        self.received += other.received;
        self.accepted += other.accepted;
        self.rejected_corrupt += other.rejected_corrupt;
        self.rejected_late += other.rejected_late;
        self.shed_overflow += other.shed_overflow;
        self.dropped_quarantined += other.dropped_quarantined;
        self.quarantines += other.quarantines;
        self.readmissions += other.readmissions;
        self.pending += other.pending;
        self.drives += other.drives;
    }

    /// Records dropped for any reason (everything except accepted and
    /// still-pending).
    pub fn dropped_total(&self) -> u64 {
        self.rejected_corrupt + self.rejected_late + self.shed_overflow + self.dropped_quarantined
    }

    /// The conservation invariant: every received record is accepted,
    /// dropped (with a counted cause) or pending.
    pub fn is_conserved(&self) -> bool {
        self.received == self.accepted + self.dropped_total() + self.pending
    }
}

/// Why and until when a drive is quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineInfo {
    /// Tick at which the quarantine was imposed.
    pub since_tick: u64,
    /// First tick at which a readmission probe is accepted; `None`
    /// means the drive exhausted its strikes and is out permanently.
    pub until_tick: Option<u64>,
}

/// One drive's score from a fleet sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetScore {
    /// The scored drive.
    pub serial: SerialNumber,
    /// Failure probability of the drive's newest accepted feature row.
    pub score: f64,
}

/// What the scoring sweep did for one batch.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepOutcome {
    /// No sweep was scheduled this tick (or no model was supplied).
    NotDue,
    /// A sweep was due but shed by the degradation ladder.
    Shed,
    /// The sweep ran; scores are sorted by serial.
    Scores(Vec<FleetScore>),
}

/// What checkpointing did for one batch.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointOutcome {
    /// No checkpoint was scheduled this tick.
    NotDue,
    /// A checkpoint was written and fsynced into place.
    Written {
        /// The tick the snapshot captures.
        tick: u64,
        /// Where it was written.
        path: PathBuf,
    },
    /// The write failed; the monitor entered degraded mode (sweeps are
    /// shed) but ingestion continued.
    Failed {
        /// The underlying error, stringified.
        detail: String,
    },
}

/// Outcome of one [`FleetMonitor::ingest_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Ticks processed so far (this batch included).
    pub tick: u64,
    /// What checkpointing did this tick.
    pub checkpoint: CheckpointOutcome,
    /// What the scoring sweep did this tick.
    pub sweep: SweepOutcome,
}

/// A record waiting in a drive's reordering window.
#[derive(Debug, Clone)]
pub(crate) struct PendingRecord {
    /// Per-drive arrival sequence number (tie-break within a day).
    pub(crate) seq: u64,
    /// The buffered record.
    pub(crate) record: DailyRecord,
}

/// Per-drive serving state: the incremental monitor plus the reorder
/// window and the quarantine state machine around it.
#[derive(Debug, Clone)]
pub(crate) struct DriveState {
    pub(crate) monitor: DriveMonitor,
    /// Reorder window, sorted by `(day, seq)`.
    pub(crate) pending: Vec<PendingRecord>,
    pub(crate) next_seq: u64,
    pub(crate) consecutive_corrupt: u32,
    pub(crate) strikes: u32,
    pub(crate) quarantine: Option<QuarantineInfo>,
}

/// One shard: the drives routed to it and their accounting.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardState {
    pub(crate) monitors: BTreeMap<SerialNumber, DriveState>,
    pub(crate) report: ShardReport,
}

/// Feeds one record into the drive monitor, driving the quarantine
/// state machine on the outcome.
fn flush_one(
    state: &mut DriveState,
    record: &DailyRecord,
    tick: u64,
    cfg: &FleetMonitorConfig,
    report: &mut ShardReport,
) {
    match state.monitor.ingest(record) {
        Ok(_) => {
            report.accepted += 1;
            state.consecutive_corrupt = 0;
        }
        Err(CoreError::OutOfOrderRecord { .. }) => {
            // Stragglers beyond the reorder window are not "poison":
            // they do not advance the quarantine streak.
            report.rejected_late += 1;
        }
        Err(_) => {
            report.rejected_corrupt += 1;
            state.consecutive_corrupt += 1;
            if state.consecutive_corrupt >= cfg.quarantine_threshold && state.quarantine.is_none() {
                state.strikes += 1;
                let until_tick =
                    if state.strikes >= cfg.quarantine_max_strikes {
                        None
                    } else {
                        let shift = (state.strikes - 1).min(32);
                        Some(tick.saturating_add(
                            cfg.quarantine_base_backoff.saturating_mul(1u64 << shift),
                        ))
                    };
                state.quarantine = Some(QuarantineInfo {
                    since_tick: tick,
                    until_tick,
                });
                report.quarantines += 1;
                state.consecutive_corrupt = 0;
            }
        }
    }
}

impl ShardState {
    /// Admits one routed record: quarantine gate, then the reordering
    /// window, flushing its overflow into the drive monitor.
    fn admit(&mut self, ev: &ArrivalEvent, tick: u64, cfg: &FleetMonitorConfig) {
        let ShardState { monitors, report } = self;
        report.received += 1;
        if let std::collections::btree_map::Entry::Vacant(slot) = monitors.entry(ev.serial) {
            slot.insert(DriveState {
                monitor: DriveMonitor::with_sanitize(
                    ev.serial,
                    ev.record.firmware.clone(),
                    cfg.sanitize,
                ),
                pending: Vec::new(),
                next_seq: 0,
                consecutive_corrupt: 0,
                strikes: 0,
                quarantine: None,
            });
            report.drives += 1;
        }
        let Some(state) = monitors.get_mut(&ev.serial) else {
            return; // unreachable: inserted above
        };
        if let Some(q) = state.quarantine {
            let readmit = matches!(q.until_tick, Some(until) if tick >= until);
            if !readmit {
                report.dropped_quarantined += 1;
                return;
            }
            state.quarantine = None;
            state.consecutive_corrupt = 0;
            report.readmissions += 1;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        let key = (ev.record.day, seq);
        let ix = state
            .pending
            .partition_point(|p| (p.record.day, p.seq) <= key);
        state.pending.insert(
            ix,
            PendingRecord {
                seq,
                record: ev.record.clone(),
            },
        );
        report.pending += 1;
        while state.pending.len() > cfg.reorder_depth {
            let head = state.pending.remove(0);
            report.pending -= 1;
            flush_one(state, &head.record, tick, cfg, report);
        }
    }

    /// Flushes every reordering window on this shard.
    fn drain(&mut self, tick: u64, cfg: &FleetMonitorConfig) {
        let ShardState { monitors, report } = self;
        for state in monitors.values_mut() {
            let pending = std::mem::take(&mut state.pending);
            for p in pending {
                report.pending -= 1;
                flush_one(state, &p.record, tick, cfg, report);
            }
        }
    }
}

/// The sharded fleet monitoring service. See the [module docs](self)
/// for the fault model.
///
/// # Example
///
/// ```
/// use mfpa_core::fleet_monitor::{FleetMonitor, FleetMonitorConfig};
/// use mfpa_fleetsim::ArrivalEvent;
/// use mfpa_telemetry::{DailyRecord, DayStamp, FirmwareVersion, SerialNumber,
///                      SmartValues, Vendor};
///
/// let mut fm = FleetMonitor::new(FleetMonitorConfig::default())?;
/// let ev = ArrivalEvent {
///     serial: SerialNumber::new(Vendor::I, 1),
///     record: DailyRecord {
///         day: DayStamp::new(0),
///         smart: SmartValues::default(),
///         firmware: FirmwareVersion::new(Vendor::I, 1),
///         w_counts: [0; 9],
///         b_counts: [0; 23],
///     },
/// };
/// fm.ingest_batch(std::slice::from_ref(&ev), None)?;
/// fm.drain();
/// let report = fm.fleet_report();
/// assert_eq!(report.received, 1);
/// assert_eq!(report.accepted, 1);
/// assert!(report.is_conserved());
/// # Ok::<(), mfpa_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct FleetMonitor {
    pub(crate) cfg: FleetMonitorConfig,
    pub(crate) shards: Vec<ShardState>,
    /// Batches processed so far.
    pub(crate) tick: u64,
    /// Last tick (inclusive) through which scoring sweeps are shed.
    pub(crate) degraded_until: u64,
    pub(crate) sweeps_shed: u64,
    pub(crate) checkpoint_failures: u64,
}

impl FleetMonitor {
    /// Creates an empty monitor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// configuration ([`FleetMonitorConfig::validate`]).
    pub fn new(cfg: FleetMonitorConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let shards = vec![ShardState::default(); cfg.n_shards];
        Ok(FleetMonitor {
            cfg,
            shards,
            tick: 0,
            degraded_until: 0,
            sweeps_shed: 0,
            checkpoint_failures: 0,
        })
    }

    /// Restores the newest valid checkpoint under
    /// `cfg.checkpoint_dir`, or `Ok(None)` when the directory is unset,
    /// missing or holds no checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CheckpointCorrupt`] when the newest
    /// checkpoint exists but fails validation — a damaged snapshot is
    /// refused, never silently skipped.
    pub fn restore_latest(cfg: FleetMonitorConfig) -> Result<Option<FleetMonitor>, CoreError> {
        let Some(dir) = cfg.checkpoint_dir.clone() else {
            return Ok(None);
        };
        match checkpoint::latest_checkpoint(&dir)? {
            None => Ok(None),
            Some(path) => Ok(Some(checkpoint::restore(cfg, &path)?)),
        }
    }

    /// The configuration the monitor runs under.
    pub fn config(&self) -> &FleetMonitorConfig {
        &self.cfg
    }

    /// Batches processed so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Whether the next due scoring sweep would be shed.
    pub fn is_degraded(&self) -> bool {
        self.tick <= self.degraded_until
    }

    /// Scoring sweeps shed by the degradation ladder so far.
    pub fn sweeps_shed(&self) -> u64 {
        self.sweeps_shed
    }

    /// Checkpoint writes that failed so far.
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures
    }

    /// Ingests one arrival-ordered batch, advancing the tick and
    /// running due checkpoints and scoring sweeps.
    ///
    /// Records are routed to shards by [`SerialNumber::shard`] and the
    /// shards are processed in parallel with bit-identical results at
    /// any worker count. A shard receiving more than
    /// [`FleetMonitorConfig::shard_queue_capacity`] records sheds the
    /// excess (counted in [`ShardReport::shed_overflow`]) and trips the
    /// degradation ladder, unless
    /// [`FleetMonitorConfig::strict_overflow`] is set. After the batch,
    /// a due checkpoint is written (a failed write degrades instead of
    /// erroring) and a due sweep runs — or is shed while degraded.
    ///
    /// Pass `trained` to score due sweeps; with `None` due sweeps
    /// report [`SweepOutcome::NotDue`].
    ///
    /// # Errors
    ///
    /// * [`CoreError::ShardOverflow`] under the strict policy, before
    ///   any state mutation — the batch can be retried or split.
    /// * Model errors from a due sweep ([`FleetMonitor::sweep_now`]).
    pub fn ingest_batch(
        &mut self,
        batch: &[ArrivalEvent],
        trained: Option<&TrainedMfpa>,
    ) -> Result<BatchOutcome, CoreError> {
        let tick = self.tick;
        let cap = self.cfg.shard_queue_capacity;
        let mut routed: Vec<Vec<&ArrivalEvent>> = vec![Vec::new(); self.cfg.n_shards];
        for ev in batch {
            routed[ev.serial.shard(self.cfg.n_shards)].push(ev);
        }
        if self.cfg.strict_overflow {
            for (shard, queue) in routed.iter().enumerate() {
                if queue.len() > cap {
                    return Err(CoreError::ShardOverflow {
                        shard,
                        dropped: queue.len() - cap,
                    });
                }
            }
        } else if routed.iter().any(|q| q.len() > cap) {
            // Overload: shed the excess below and shed sweeps for the
            // cooldown — scoring degrades before ingestion does.
            self.degraded_until = self.degraded_until.max(
                tick.saturating_add(1)
                    .saturating_add(self.cfg.degrade_cooldown),
            );
        }
        let cfg = &self.cfg;
        ordered_map_mut(
            &mut self.shards,
            Workers::from_config(cfg.n_threads),
            |shard_ix, shard| {
                for (i, ev) in routed[shard_ix].iter().enumerate() {
                    if i >= cap {
                        shard.report.received += 1;
                        shard.report.shed_overflow += 1;
                        continue;
                    }
                    shard.admit(ev, tick, cfg);
                }
            },
        );
        self.tick += 1;
        let checkpoint = self.maybe_checkpoint();
        let sweep = self.maybe_sweep(trained)?;
        Ok(BatchOutcome {
            tick: self.tick,
            checkpoint,
            sweep,
        })
    }

    fn maybe_checkpoint(&mut self) -> CheckpointOutcome {
        if self.cfg.checkpoint_interval == 0
            || !self.tick.is_multiple_of(self.cfg.checkpoint_interval)
        {
            return CheckpointOutcome::NotDue;
        }
        match checkpoint::write_checkpoint(self) {
            Ok(path) => CheckpointOutcome::Written {
                tick: self.tick,
                path,
            },
            Err(e) => {
                self.checkpoint_failures += 1;
                self.degraded_until = self
                    .degraded_until
                    .max(self.tick.saturating_add(self.cfg.degrade_cooldown));
                CheckpointOutcome::Failed {
                    detail: e.to_string(),
                }
            }
        }
    }

    fn maybe_sweep(&mut self, trained: Option<&TrainedMfpa>) -> Result<SweepOutcome, CoreError> {
        if self.cfg.sweep_interval == 0 || !self.tick.is_multiple_of(self.cfg.sweep_interval) {
            return Ok(SweepOutcome::NotDue);
        }
        if self.tick <= self.degraded_until {
            self.sweeps_shed += 1;
            return Ok(SweepOutcome::Shed);
        }
        match trained {
            None => Ok(SweepOutcome::NotDue),
            Some(t) => Ok(SweepOutcome::Scores(self.sweep_now(t)?)),
        }
    }

    /// Scores every non-quarantined drive's newest accepted feature row
    /// against `trained`, sorted by serial. Quarantined drives and
    /// drives with no accepted record yet are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedModel`] for a sequence model and
    /// propagates prediction errors.
    pub fn sweep_now(&self, trained: &TrainedMfpa) -> Result<Vec<FleetScore>, CoreError> {
        if trained.uses_sequence() {
            return Err(CoreError::UnsupportedModel(
                "FleetMonitor scores flat models; sequence models need windowed input".into(),
            ));
        }
        let mut entries: Vec<(SerialNumber, Vec<f64>)> = Vec::new();
        for shard in &self.shards {
            for (serial, state) in &shard.monitors {
                if state.quarantine.is_some() || state.monitor.last_row.is_empty() {
                    continue;
                }
                let selected: Vec<f64> = trained
                    .features()
                    .iter()
                    .map(|f| state.monitor.last_row[f.full_index()])
                    .collect();
                entries.push((*serial, selected));
            }
        }
        entries.sort_by_key(|(serial, _)| *serial);
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let rows: Vec<Vec<f64>> = entries.iter().map(|(_, row)| row.clone()).collect();
        let x = Matrix::from_rows(&rows)?;
        let probs = trained.predict_matrix(&x)?;
        Ok(entries
            .iter()
            .zip(probs)
            .map(|((serial, _), score)| FleetScore {
                serial: *serial,
                score,
            })
            .collect())
    }

    /// Flushes every drive's reordering window (end-of-stream): pending
    /// records are resolved into accepted / rejected and the `pending`
    /// gauges drop to zero.
    pub fn drain(&mut self) {
        let tick = self.tick;
        let cfg = &self.cfg;
        ordered_map_mut(
            &mut self.shards,
            Workers::from_config(cfg.n_threads),
            |_, shard| shard.drain(tick, cfg),
        );
    }

    /// The newest accepted full feature row for `serial`: `Ok(None)`
    /// for an unknown drive, an empty row for a known drive with no
    /// accepted record yet.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::QuarantinedDrive`] (with shard and
    /// readmission tick) while the drive is quarantined.
    pub fn drive_row(&self, serial: SerialNumber) -> Result<Option<Vec<f64>>, CoreError> {
        let shard_ix = serial.shard(self.cfg.n_shards);
        let Some(state) = self
            .shards
            .get(shard_ix)
            .and_then(|s| s.monitors.get(&serial))
        else {
            return Ok(None);
        };
        if let Some(q) = state.quarantine {
            return Err(CoreError::QuarantinedDrive {
                serial,
                shard: shard_ix,
                until_tick: q.until_tick,
            });
        }
        Ok(Some(state.monitor.last_row.clone()))
    }

    /// Every currently quarantined drive, sorted by serial.
    pub fn quarantined(&self) -> Vec<(SerialNumber, QuarantineInfo)> {
        let mut out: Vec<(SerialNumber, QuarantineInfo)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .monitors
                    .iter()
                    .filter_map(|(serial, state)| state.quarantine.map(|q| (*serial, q)))
            })
            .collect();
        out.sort_by_key(|(serial, _)| *serial);
        out
    }

    /// Per-shard accounting, indexed by shard.
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        self.shards.iter().map(|s| s.report).collect()
    }

    /// Accounting merged across all shards.
    pub fn fleet_report(&self) -> ShardReport {
        let mut total = ShardReport::default();
        for shard in &self.shards {
            total.merge(&shard.report);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::{DayStamp, FirmwareVersion, SmartAttr, SmartValues, Vendor};

    fn event(id: u64, day: i64) -> ArrivalEvent {
        ArrivalEvent {
            serial: SerialNumber::new(Vendor::I, id),
            record: DailyRecord {
                day: DayStamp::new(day),
                smart: SmartValues::default(),
                firmware: FirmwareVersion::new(Vendor::I, 1),
                w_counts: [0; 9],
                b_counts: [0; 23],
            },
        }
    }

    fn poison(id: u64, day: i64) -> ArrivalEvent {
        let mut ev = event(id, day);
        for attr in SmartAttr::ALL {
            ev.record.smart.set(attr, u64::MAX as f64);
        }
        ev
    }

    fn small_cfg() -> FleetMonitorConfig {
        FleetMonitorConfig::default()
            .with_shards(4)
            .with_reorder_depth(2)
            .with_sweep_interval(0)
    }

    #[test]
    fn rejects_invalid_configs() {
        for bad in [
            FleetMonitorConfig::default().with_shards(0),
            FleetMonitorConfig::default().with_queue_capacity(0),
            FleetMonitorConfig::default().with_quarantine(0, 8, 4),
            FleetMonitorConfig::default().with_quarantine(3, 0, 4),
            FleetMonitorConfig::default().with_quarantine(3, 8, 0),
            FleetMonitorConfig {
                checkpoint_interval: 4, // no dir
                ..FleetMonitorConfig::default()
            },
        ] {
            assert!(matches!(
                FleetMonitor::new(bad),
                Err(CoreError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn ingest_conserves_and_reorders_within_the_window() {
        let mut fm = FleetMonitor::new(small_cfg()).expect("config");
        // Clock-skewed pair: day 1 arrives before day 0; the reorder
        // window (depth 2) must re-sequence them.
        let batch = vec![event(1, 1), event(1, 0), event(1, 2), event(2, 0)];
        fm.ingest_batch(&batch, None).expect("ingest");
        fm.drain();
        let report = fm.fleet_report();
        assert_eq!(report.received, 4);
        assert_eq!(report.accepted, 4, "{report:?}");
        assert_eq!(report.rejected_late, 0);
        assert_eq!(report.pending, 0);
        assert_eq!(report.drives, 2);
        assert!(report.is_conserved());
        let row = fm
            .drive_row(SerialNumber::new(Vendor::I, 1))
            .expect("not quarantined")
            .expect("known");
        assert_eq!(row.len(), 45);
    }

    #[test]
    fn straggler_beyond_window_is_rejected_late_not_poison() {
        let mut fm = FleetMonitor::new(small_cfg().with_reorder_depth(0)).expect("config");
        let batch = vec![event(1, 5), event(1, 0)];
        fm.ingest_batch(&batch, None).expect("ingest");
        fm.drain();
        let report = fm.fleet_report();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.rejected_late, 1);
        assert!(report.is_conserved());
        assert!(fm.quarantined().is_empty());
    }

    #[test]
    fn poison_drive_is_quarantined_with_backoff_then_permanently() {
        let cfg = small_cfg().with_reorder_depth(0).with_quarantine(2, 4, 3);
        let mut fm = FleetMonitor::new(cfg).expect("config");
        let serial = SerialNumber::new(Vendor::I, 7);
        let shard = serial.shard(4);
        // Strike 1: two corrupt records at tick 0 -> backoff 4 ticks.
        fm.ingest_batch(&[poison(7, 0), poison(7, 1)], None)
            .expect("ingest");
        let q = fm.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0, serial);
        assert_eq!(q[0].1.until_tick, Some(4));
        match fm.drive_row(serial) {
            Err(CoreError::QuarantinedDrive {
                serial: s,
                shard: sh,
                until_tick,
            }) => {
                assert_eq!(s, serial);
                assert_eq!(sh, shard);
                assert_eq!(until_tick, Some(4));
            }
            other => panic!("expected QuarantinedDrive, got {other:?}"),
        }
        // Ticks 1..3: deliveries are dropped, quarantine holds.
        for day in 2..5 {
            fm.ingest_batch(&[poison(7, day)], None).expect("ingest");
        }
        assert_eq!(fm.fleet_report().dropped_quarantined, 3);
        assert_eq!(fm.quarantined().len(), 1);
        // Tick 4: readmission probe; still poison -> strike 2, backoff 8.
        fm.ingest_batch(&[poison(7, 5), poison(7, 6)], None)
            .expect("ingest");
        let report = fm.fleet_report();
        assert_eq!(report.readmissions, 1);
        assert_eq!(report.quarantines, 2);
        assert_eq!(fm.quarantined()[0].1.until_tick, Some(4 + 8));
        // Skip to the readmission tick; still poison -> strike 3 of 3:
        // permanent.
        while fm.tick() < 12 {
            fm.ingest_batch(&[], None).expect("ingest");
        }
        fm.ingest_batch(&[poison(7, 7), poison(7, 8)], None)
            .expect("ingest");
        assert_eq!(fm.quarantined()[0].1.until_tick, None);
        // Permanent: later deliveries are dropped forever.
        fm.ingest_batch(&[event(7, 9)], None).expect("ingest");
        assert_eq!(fm.quarantined().len(), 1);
        assert!(fm.fleet_report().is_conserved());
    }

    #[test]
    fn recovered_drive_is_readmitted() {
        let cfg = small_cfg().with_reorder_depth(0).with_quarantine(2, 2, 5);
        let mut fm = FleetMonitor::new(cfg).expect("config");
        let serial = SerialNumber::new(Vendor::I, 7);
        fm.ingest_batch(&[poison(7, 0), poison(7, 1)], None)
            .expect("ingest");
        assert_eq!(fm.quarantined().len(), 1);
        fm.ingest_batch(&[], None).expect("ingest");
        // Tick 2 = readmission tick; a clean record lifts the quarantine.
        fm.ingest_batch(&[event(7, 2)], None).expect("ingest");
        assert!(fm.quarantined().is_empty());
        let report = fm.fleet_report();
        assert_eq!(report.readmissions, 1);
        assert_eq!(report.accepted, 1);
        assert!(fm.drive_row(serial).expect("readmitted").is_some());
    }

    #[test]
    fn overflow_sheds_and_degrades_or_rejects_strictly() {
        let cfg = small_cfg()
            .with_shards(1)
            .with_queue_capacity(2)
            .with_sweep_interval(1)
            .with_degrade_cooldown(2);
        let mut fm = FleetMonitor::new(cfg.clone()).expect("config");
        let batch: Vec<ArrivalEvent> = (0..5).map(|d| event(1, d)).collect();
        let out = fm.ingest_batch(&batch, None).expect("ingest");
        // Ladder: the sweep due this very tick is already shed.
        assert_eq!(out.sweep, SweepOutcome::Shed);
        assert!(fm.is_degraded());
        assert_eq!(fm.sweeps_shed(), 1);
        let report = fm.fleet_report();
        assert_eq!(report.received, 5);
        assert_eq!(report.shed_overflow, 3);
        assert!(report.is_conserved(), "{report:?}");
        // Degradation expires after the cooldown.
        for _ in 0..3 {
            fm.ingest_batch(&[], None).expect("ingest");
        }
        assert!(!fm.is_degraded());
        assert_eq!(fm.sweeps_shed(), 3);

        // Strict policy: rejected whole, before any mutation.
        let mut strict = FleetMonitor::new(cfg.with_strict_overflow(true)).expect("config");
        match strict.ingest_batch(&batch, None) {
            Err(CoreError::ShardOverflow { shard, dropped }) => {
                assert_eq!(shard, 0);
                assert_eq!(dropped, 3);
            }
            other => panic!("expected ShardOverflow, got {other:?}"),
        }
        assert_eq!(strict.tick(), 0);
        assert_eq!(strict.fleet_report(), ShardReport::default());
    }

    #[test]
    fn shard_reports_partition_the_fleet_report() {
        let mut fm = FleetMonitor::new(small_cfg()).expect("config");
        let batch: Vec<ArrivalEvent> = (0..40).map(|id| event(id, 0)).collect();
        fm.ingest_batch(&batch, None).expect("ingest");
        fm.drain();
        let per_shard = fm.shard_reports();
        assert_eq!(per_shard.len(), 4);
        let mut merged = ShardReport::default();
        for r in &per_shard {
            merged.merge(r);
        }
        assert_eq!(merged, fm.fleet_report());
        assert_eq!(merged.drives, 40);
        assert!(per_shard.iter().filter(|r| r.received > 0).count() > 1);
    }
}
