//! MFPA — the Multidimensional-based Failure Prediction Approach of
//! "Multidimensional Features Helping Predict Failures in Production
//! SSD-Based Consumer Storage Systems" (DATE 2023).
//!
//! The pipeline mirrors §III-C of the paper:
//!
//! 1. **Optimisation of discontinuous data** ([`preprocess`]): drop
//!    telemetry segments separated by gaps ≥ 10 days, mean-fill gaps
//!    ≤ 3 days, and accumulate daily Windows-event / BSOD counts into
//!    cumulative features.
//! 2. **Identification of the eventual failure time** ([`labeling`]):
//!    align trouble-ticket maintenance times (IMT) with tracking points
//!    using the θ threshold (θ = 7 by default).
//! 3. **Time-series-based optimisation** ([`windows`] + the split/CV
//!    machinery in `mfpa-dataset`): timepoint-based segmentation and
//!    time-series cross-validation, plus random under-sampling of the
//!    healthy majority.
//! 4. **Multiple ML algorithms** ([`Algorithm`]): Bayes, SVM, RF, GBDT,
//!    CNN_LSTM over [`mfpa-ml`](mfpa_ml), with grid search available.
//! 5. **Feature group sets** ([`FeatureGroup`]): SFWB, SFW, SFB, SF, S,
//!    W, B (Table V), plus sequential forward selection (Fig 17).
//!
//! Ahead of stage 1, a telemetry **sanitization stage** ([`sanitize`])
//! defends the pipeline against the corrupted collection paths real
//! consumer telemetry traverses: it validates SMART pages, collapses
//! duplicated days, re-sequences bounded out-of-order arrivals, repairs
//! cumulative-counter rollovers and imputes missing attributes,
//! quarantining what it cannot repair with per-cause accounting
//! ([`SanitizeReport`]). The same defenses run incrementally inside the
//! client-side [`deploy::DriveMonitor`].
//!
//! # Quickstart
//!
//! ```
//! use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
//! use mfpa_fleetsim::{FleetConfig, SimulatedFleet};
//!
//! let fleet = SimulatedFleet::generate(&FleetConfig::tiny(1));
//! let config = MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest);
//! let report = Mfpa::new(config).run(&fleet)?;
//! assert!(report.drive.auc > 0.5);
//! # Ok::<(), mfpa_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

/// Shared little-endian codec vocabulary (re-export of `mfpa-bytes`):
/// [`bytes::ByteWriter`], [`bytes::ByteReader`] and the FNV-1a-64
/// checksum framing used by the checkpoint and `.mfpac` codecs.
pub use mfpa_bytes as bytes;

mod algorithms;
pub mod baselines;
pub mod checkpoint;
pub mod deploy;
mod error;
mod features;
pub mod fleet_monitor;
pub mod labeling;
mod pipeline;
pub mod preprocess;
mod report;
pub mod sanitize;
pub mod windows;

pub use algorithms::Algorithm;
pub use error::CoreError;
pub use features::{FeatureGroup, FeatureId};
pub use fleet_monitor::{
    BatchOutcome, CheckpointOutcome, FleetMonitor, FleetMonitorConfig, FleetScore, QuarantineInfo,
    ShardReport, SweepOutcome,
};
pub use pipeline::{CvStrategy, Mfpa, MfpaConfig, SplitStrategy, TrainedMfpa};
pub use report::{EvalReport, MetricSet, StageTimings};
pub use sanitize::{QuarantineCause, SanitizeConfig, SanitizeReport};
