//! Crash-safe checkpointing for the [`crate::fleet_monitor`] service.
//!
//! A checkpoint is a complete, self-contained binary snapshot of a
//! [`FleetMonitor`]: every drive monitor's incremental feature state,
//! every reordering window, the quarantine state machines, the
//! per-shard accounting and the degradation counters. Restoring the
//! snapshot and replaying the remaining batches is bit-identical to an
//! uninterrupted run.
//!
//! Format (all integers little-endian, floats as IEEE-754 bit
//! patterns so restore is exact):
//!
//! ```text
//! magic "MFPA" | version | n_shards | tick | degradation counters
//! per shard: report | n_drives | per drive: full DriveState
//! footer: FNV-1a-64 of everything above
//! ```
//!
//! Durability rules:
//!
//! * writes go to `ckpt-{tick:020}.mfpa.tmp` and are renamed into
//!   place, so a crash mid-write never leaves a half checkpoint under
//!   the canonical name;
//! * the newest snapshot is the one with the largest tick in its file
//!   name — selection never depends on directory iteration order;
//! * [`restore`] validates magic, version, shard layout, structural
//!   bounds and the checksum, refusing damaged files with
//!   [`CoreError::CheckpointCorrupt`] rather than loading poisoned
//!   state.

use std::path::{Path, PathBuf};

use mfpa_telemetry::{DailyRecord, DayStamp, FirmwareVersion, SerialNumber, SmartValues, Vendor};

use crate::bytes::{unseal, ByteReader, ByteWriter};

use crate::error::CoreError;
use crate::fleet_monitor::{
    DriveState, FleetMonitor, FleetMonitorConfig, PendingRecord, QuarantineInfo, ShardReport,
    ShardState,
};
use crate::sanitize::{SanitizeConfig, SanitizeReport};

/// `"MFPA"` in ASCII.
const MAGIC: u32 = 0x4D46_5041;
/// Bump on any layout change; old versions are refused, not migrated.
const VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_serial(w: &mut ByteWriter, serial: SerialNumber) {
    // mfpa-lint: allow(d6, "Vendor::index is 0..=3 by construction; one tag byte")
    w.u8(serial.vendor().index() as u8);
    w.u64(serial.id());
}

fn put_firmware(w: &mut ByteWriter, fw: &FirmwareVersion) {
    w.u8(fw.vendor().index() as u8);
    w.u32(fw.seq());
}

fn put_record(w: &mut ByteWriter, record: &DailyRecord) {
    w.i64(record.day.day());
    for &v in record.smart.as_slice() {
        w.f64(v);
    }
    put_firmware(w, &record.firmware);
    for &c in &record.w_counts {
        w.u32(c);
    }
    for &c in &record.b_counts {
        w.u32(c);
    }
}

fn put_sanitize_report(w: &mut ByteWriter, r: &SanitizeReport) {
    w.counter(r.input_records);
    w.counter(r.kept_records);
    w.counter(r.quarantined_sentinel);
    w.counter(r.quarantined_range);
    w.counter(r.quarantined_late);
    w.counter(r.quarantined_missing);
    w.counter(r.duplicates_collapsed);
    w.counter(r.reordered);
    w.counter(r.rollovers_repaired);
    w.counter(r.values_imputed);
}

fn put_shard_report(w: &mut ByteWriter, r: &ShardReport) {
    w.u64(r.received);
    w.u64(r.accepted);
    w.u64(r.rejected_corrupt);
    w.u64(r.rejected_late);
    w.u64(r.shed_overflow);
    w.u64(r.dropped_quarantined);
    w.u64(r.quarantines);
    w.u64(r.readmissions);
    w.u64(r.pending);
    w.u64(r.drives);
}

fn put_drive_state(w: &mut ByteWriter, serial: SerialNumber, state: &DriveState) {
    put_serial(w, serial);
    let m = &state.monitor;
    put_firmware(w, &m.firmware);
    for &v in &m.w_cum {
        w.u64(v);
    }
    for &v in &m.b_cum {
        w.u64(v);
    }
    w.flag(m.last_day.is_some());
    w.i64(m.last_day.map_or(0, |d| d.day()));
    w.i64(m.sanitize_cfg.reorder_window);
    w.f64(m.sanitize_cfg.sentinel_ceiling);
    w.flag(m.last_smart.is_some());
    for &v in &m.last_smart.unwrap_or([0.0; 16]) {
        w.f64(v);
    }
    for &v in &m.smart_offsets {
        w.f64(v);
    }
    w.counter(m.last_row.len());
    for &v in &m.last_row {
        w.f64(v);
    }
    put_sanitize_report(w, &m.report);
    w.counter(state.pending.len());
    for p in &state.pending {
        w.u64(p.seq);
        put_record(w, &p.record);
    }
    w.u64(state.next_seq);
    w.u32(state.consecutive_corrupt);
    w.u32(state.strikes);
    match state.quarantine {
        None => {
            w.u8(0);
            w.u64(0);
            w.u64(0);
        }
        Some(QuarantineInfo {
            since_tick,
            until_tick,
        }) => {
            w.u8(if until_tick.is_some() { 1 } else { 2 });
            w.u64(since_tick);
            w.u64(until_tick.unwrap_or(0));
        }
    }
}

/// Serializes `monitor` to checksummed checkpoint bytes.
pub(crate) fn encode(monitor: &FleetMonitor) -> Vec<u8> {
    let mut w = ByteWriter::default();
    w.u32(MAGIC);
    w.u32(VERSION);
    w.counter(monitor.cfg.n_shards);
    w.u64(monitor.tick);
    w.u64(monitor.degraded_until);
    w.u64(monitor.sweeps_shed);
    w.u64(monitor.checkpoint_failures);
    for shard in &monitor.shards {
        put_shard_report(&mut w, &shard.report);
        w.counter(shard.monitors.len());
        for (serial, state) in &shard.monitors {
            put_drive_state(&mut w, *serial, state);
        }
    }
    w.into_sealed()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn get_vendor(r: &mut ByteReader<'_>) -> Result<Vendor, String> {
    let ix = r.u8()?;
    Vendor::from_index(usize::from(ix)).ok_or_else(|| format!("invalid vendor index {ix}"))
}

fn get_serial(r: &mut ByteReader<'_>) -> Result<SerialNumber, String> {
    let vendor = get_vendor(r)?;
    Ok(SerialNumber::new(vendor, r.u64()?))
}

fn get_firmware(r: &mut ByteReader<'_>) -> Result<FirmwareVersion, String> {
    let vendor = get_vendor(r)?;
    let seq = r.u32()?;
    if seq == 0 {
        return Err("firmware sequence 0 (1-based)".into());
    }
    Ok(FirmwareVersion::new(vendor, seq))
}

fn get_record(r: &mut ByteReader<'_>) -> Result<DailyRecord, String> {
    let day = DayStamp::new(r.i64()?);
    let mut smart = [0.0f64; 16];
    for v in &mut smart {
        *v = r.f64()?;
    }
    let firmware = get_firmware(r)?;
    let mut w_counts = [0u32; 9];
    for c in &mut w_counts {
        *c = r.u32()?;
    }
    let mut b_counts = [0u32; 23];
    for c in &mut b_counts {
        *c = r.u32()?;
    }
    Ok(DailyRecord {
        day,
        smart: SmartValues::from_array(smart),
        firmware,
        w_counts,
        b_counts,
    })
}

fn get_sanitize_report(r: &mut ByteReader<'_>) -> Result<SanitizeReport, String> {
    Ok(SanitizeReport {
        input_records: r.counter()?,
        kept_records: r.counter()?,
        quarantined_sentinel: r.counter()?,
        quarantined_range: r.counter()?,
        quarantined_late: r.counter()?,
        quarantined_missing: r.counter()?,
        duplicates_collapsed: r.counter()?,
        reordered: r.counter()?,
        rollovers_repaired: r.counter()?,
        values_imputed: r.counter()?,
    })
}

fn get_shard_report(r: &mut ByteReader<'_>) -> Result<ShardReport, String> {
    Ok(ShardReport {
        received: r.u64()?,
        accepted: r.u64()?,
        rejected_corrupt: r.u64()?,
        rejected_late: r.u64()?,
        shed_overflow: r.u64()?,
        dropped_quarantined: r.u64()?,
        quarantines: r.u64()?,
        readmissions: r.u64()?,
        pending: r.u64()?,
        drives: r.u64()?,
    })
}

fn get_drive_state(r: &mut ByteReader<'_>) -> Result<(SerialNumber, DriveState), String> {
    let serial = get_serial(r)?;
    let firmware = get_firmware(r)?;
    let mut w_cum = [0u64; 5];
    for v in &mut w_cum {
        *v = r.u64()?;
    }
    let mut b_cum = [0u64; 23];
    for v in &mut b_cum {
        *v = r.u64()?;
    }
    let has_last_day = r.flag()?;
    let last_day_raw = r.i64()?;
    let last_day = has_last_day.then(|| DayStamp::new(last_day_raw));
    let sanitize_cfg = SanitizeConfig {
        reorder_window: r.i64()?,
        sentinel_ceiling: r.f64()?,
    };
    let has_last_smart = r.flag()?;
    let mut last_smart_raw = [0.0f64; 16];
    for v in &mut last_smart_raw {
        *v = r.f64()?;
    }
    let last_smart = has_last_smart.then_some(last_smart_raw);
    let mut smart_offsets = [0.0f64; 16];
    for v in &mut smart_offsets {
        *v = r.f64()?;
    }
    let row_len = r.len(8)?;
    let mut last_row = Vec::with_capacity(row_len);
    for _ in 0..row_len {
        last_row.push(r.f64()?);
    }
    let report = get_sanitize_report(r)?;
    let n_pending = r.len(8)?;
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        let seq = r.u64()?;
        pending.push(PendingRecord {
            seq,
            record: get_record(r)?,
        });
    }
    let next_seq = r.u64()?;
    let consecutive_corrupt = r.u32()?;
    let strikes = r.u32()?;
    let tag = r.u8()?;
    let since_tick = r.u64()?;
    let until_raw = r.u64()?;
    let quarantine = match tag {
        0 => None,
        1 => Some(QuarantineInfo {
            since_tick,
            until_tick: Some(until_raw),
        }),
        2 => Some(QuarantineInfo {
            since_tick,
            until_tick: None,
        }),
        other => return Err(format!("invalid quarantine tag {other}")),
    };
    let monitor = crate::deploy::DriveMonitor {
        serial,
        firmware,
        w_cum,
        b_cum,
        last_day,
        sanitize_cfg,
        last_smart,
        smart_offsets,
        last_row,
        report,
    };
    Ok((
        serial,
        DriveState {
            monitor,
            pending,
            next_seq,
            consecutive_corrupt,
            strikes,
            quarantine,
        },
    ))
}

fn corrupt(path: &Path, detail: impl Into<String>) -> CoreError {
    CoreError::CheckpointCorrupt {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

/// Decodes and validates checkpoint bytes under `cfg`.
fn decode(cfg: FleetMonitorConfig, data: &[u8], path: &Path) -> Result<FleetMonitor, CoreError> {
    let payload = unseal(data).map_err(|e| corrupt(path, e))?;
    let mut r = ByteReader::new(payload);
    let step = |r: &mut ByteReader<'_>| -> Result<FleetMonitor, String> {
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(format!("bad magic {magic:#010x}"));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported version {version} (want {VERSION})"));
        }
        let n_shards = r.counter()?;
        if n_shards != cfg.n_shards {
            return Err(format!(
                "shard layout mismatch: checkpoint has {n_shards} shards, config wants {}",
                cfg.n_shards
            ));
        }
        let tick = r.u64()?;
        let degraded_until = r.u64()?;
        let sweeps_shed = r.u64()?;
        let checkpoint_failures = r.u64()?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let report = get_shard_report(r)?;
            let n_drives = r.len(1)?;
            let mut monitors = std::collections::BTreeMap::new();
            for _ in 0..n_drives {
                let (serial, state) = get_drive_state(r)?;
                monitors.insert(serial, state);
            }
            shards.push(ShardState { monitors, report });
        }
        if !r.done() {
            return Err(format!(
                "{} trailing bytes after the final shard",
                payload.len() - r.position()
            ));
        }
        Ok(FleetMonitor {
            cfg: cfg.clone(),
            shards,
            tick,
            degraded_until,
            sweeps_shed,
            checkpoint_failures,
        })
    };
    step(&mut r).map_err(|e| corrupt(path, e))
}

// ---------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------

fn file_name(tick: u64) -> String {
    format!("ckpt-{tick:020}.mfpa")
}

fn parse_tick(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".mfpa")?
        .parse()
        .ok()
}

fn io_corrupt(path: &Path, what: &str, e: &std::io::Error) -> CoreError {
    corrupt(path, format!("{what} failed: {e}"))
}

fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CoreError> {
    let mut out = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| io_corrupt(dir, "read_dir", &e))?;
    for entry in rd {
        let entry = entry.map_err(|e| io_corrupt(dir, "read_dir", &e))?;
        let name = entry.file_name();
        let Some(tick) = name.to_str().and_then(parse_tick) else {
            continue;
        };
        out.push((tick, entry.path()));
    }
    Ok(out)
}

/// The newest checkpoint under `dir` — the one with the largest tick in
/// its file name, never a function of directory iteration order.
/// `Ok(None)` when `dir` is missing or holds no checkpoints.
///
/// # Errors
///
/// Returns [`CoreError::CheckpointCorrupt`] when the directory exists
/// but cannot be listed.
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, CoreError> {
    if !dir.exists() {
        return Ok(None);
    }
    Ok(list_checkpoints(dir)?
        .into_iter()
        .max_by_key(|(tick, _)| *tick)
        .map(|(_, path)| path))
}

/// Removes all but the newest `keep` checkpoints (clamped to 1).
fn prune(dir: &Path, keep: usize) -> Result<(), CoreError> {
    let mut ticks = list_checkpoints(dir)?;
    ticks.sort_by_key(|(tick, _)| *tick);
    let keep = keep.max(1);
    if ticks.len() > keep {
        let cut = ticks.len() - keep;
        for (_, path) in &ticks[..cut] {
            std::fs::remove_file(path).map_err(|e| io_corrupt(path, "remove", &e))?;
        }
    }
    Ok(())
}

/// Writes a checkpoint of `monitor`'s full state into its configured
/// checkpoint directory, atomically (tmp + rename), pruning old
/// snapshots down to [`FleetMonitorConfig::checkpoint_keep`]. Returns
/// the written path.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when no checkpoint directory is
/// configured and [`CoreError::CheckpointCorrupt`] (detail carries the
/// underlying IO error) when the write cannot be completed — the
/// caller ([`FleetMonitor::ingest_batch`]) degrades rather than
/// crashing on that.
pub fn write_checkpoint(monitor: &FleetMonitor) -> Result<PathBuf, CoreError> {
    let Some(dir) = monitor.cfg.checkpoint_dir.clone() else {
        return Err(CoreError::InvalidConfig(
            "checkpointing requires a checkpoint_dir".into(),
        ));
    };
    std::fs::create_dir_all(&dir).map_err(|e| io_corrupt(&dir, "create_dir_all", &e))?;
    let bytes = encode(monitor);
    let name = file_name(monitor.tick);
    let final_path = dir.join(&name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp_path, &bytes).map_err(|e| io_corrupt(&tmp_path, "write", &e))?;
    std::fs::rename(&tmp_path, &final_path).map_err(|e| io_corrupt(&final_path, "rename", &e))?;
    prune(&dir, monitor.cfg.checkpoint_keep)?;
    Ok(final_path)
}

/// Restores a [`FleetMonitor`] from the checkpoint at `path`, running
/// under `cfg` (which must agree with the checkpoint's shard layout).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an invalid `cfg` and
/// [`CoreError::CheckpointCorrupt`] when the file cannot be read, its
/// magic / version / shard count disagree, any field fails structural
/// validation, or the checksum does not match — a damaged checkpoint
/// is refused, never partially loaded.
pub fn restore(cfg: FleetMonitorConfig, path: &Path) -> Result<FleetMonitor, CoreError> {
    cfg.validate()?;
    let data = std::fs::read(path).map_err(|e| io_corrupt(path, "read", &e))?;
    decode(cfg, &data, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet_monitor::FleetMonitorConfig;
    use mfpa_fleetsim::ArrivalEvent;
    use mfpa_telemetry::{SmartAttr, Vendor};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mfpa-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn event(id: u64, day: i64, poison: bool) -> ArrivalEvent {
        let mut record = DailyRecord {
            day: DayStamp::new(day),
            smart: SmartValues::default(),
            firmware: FirmwareVersion::new(Vendor::II, 1),
            w_counts: [1, 0, 2, 0, 0, 0, 0, 0, 0],
            b_counts: [0; 23],
        };
        record
            .smart
            .set(SmartAttr::PowerOnHours, 100.0 + day as f64);
        if poison {
            for attr in SmartAttr::ALL {
                record.smart.set(attr, u64::MAX as f64);
            }
        }
        ArrivalEvent {
            serial: SerialNumber::new(Vendor::II, id),
            record,
        }
    }

    fn populated_monitor(dir: &Path) -> FleetMonitor {
        let cfg = FleetMonitorConfig::default()
            .with_shards(4)
            .with_reorder_depth(2)
            .with_quarantine(2, 4, 3)
            .with_sweep_interval(0)
            .with_checkpointing(dir, 1);
        let mut fm = FleetMonitor::new(cfg).expect("config");
        // A mix of clean drives, a reorder buffer left non-empty, and a
        // quarantined poison drive. Five poison records push three past
        // the depth-2 reorder window; the third flush trips the
        // 2-corrupt quarantine, so the snapshot covers every field.
        let batch: Vec<ArrivalEvent> = (0..12)
            .map(|id| event(id, 0, false))
            .chain((0..5).map(|day| event(99, day, true)))
            .collect();
        fm.ingest_batch(&batch, None).expect("batch 0");
        let batch2: Vec<ArrivalEvent> = (0..12).map(|id| event(id, 1, false)).collect();
        fm.ingest_batch(&batch2, None).expect("batch 1");
        fm
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let dir = temp_dir("roundtrip");
        let fm = populated_monitor(&dir);
        assert!(!fm.quarantined().is_empty());
        assert!(fm.fleet_report().pending > 0, "want a live reorder buffer");
        let path = write_checkpoint(&fm).expect("write");
        let restored = restore(fm.config().clone(), &path).expect("restore");
        // Bit-identity of the full state: re-encoding the restored
        // monitor must reproduce the original bytes exactly.
        assert_eq!(encode(&restored), encode(&fm));
        assert_eq!(restored.tick(), fm.tick());
        assert_eq!(restored.quarantined(), fm.quarantined());
        assert_eq!(restored.fleet_report(), fm.fleet_report());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let dir = temp_dir("bitflip");
        let fm = populated_monitor(&dir);
        let path = write_checkpoint(&fm).expect("write");
        let clean = std::fs::read(&path).expect("read");
        for seed in 0..24u64 {
            let mut damaged = clean.clone();
            mfpa_fleetsim::replay::flip_one_byte(&mut damaged, seed).expect("flip");
            if damaged == clean {
                continue;
            }
            std::fs::write(&path, &damaged).expect("rewrite");
            match restore(fm.config().clone(), &path) {
                Err(CoreError::CheckpointCorrupt { .. }) => {}
                other => panic!("flip seed {seed} was accepted: {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_layout_mismatch_are_rejected() {
        let dir = temp_dir("truncate");
        let fm = populated_monitor(&dir);
        let path = write_checkpoint(&fm).expect("write");
        let clean = std::fs::read(&path).expect("read");
        for cut in [0, 3, 7, clean.len() / 2, clean.len() - 1] {
            std::fs::write(&path, &clean[..cut]).expect("rewrite");
            assert!(matches!(
                restore(fm.config().clone(), &path),
                Err(CoreError::CheckpointCorrupt { .. })
            ));
        }
        std::fs::write(&path, &clean).expect("restore bytes");
        let wrong_shards = fm.config().clone().with_shards(8);
        match restore(wrong_shards, &path) {
            Err(CoreError::CheckpointCorrupt { detail, .. }) => {
                assert!(detail.contains("shard layout"), "{detail}");
            }
            other => panic!("expected layout rejection, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_selection_and_pruning_track_the_tick() {
        let dir = temp_dir("latest");
        let mut fm = populated_monitor(&dir); // writes ticks 1 and 2
        fm.ingest_batch(&[], None).expect("batch 2"); // writes tick 3
        let latest = latest_checkpoint(&dir).expect("list").expect("some");
        assert!(latest.ends_with(file_name(3)));
        // checkpoint_keep = 2: tick 1 was pruned.
        let remaining = list_checkpoints(&dir).expect("list");
        let mut ticks: Vec<u64> = remaining.iter().map(|(t, _)| *t).collect();
        ticks.sort_unstable();
        assert_eq!(ticks, vec![2, 3]);
        assert_eq!(
            latest_checkpoint(&dir.join("missing")).expect("missing dir"),
            None
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_latest_resumes_and_write_failure_degrades() {
        let dir = temp_dir("resume");
        let fm = populated_monitor(&dir);
        let resumed = FleetMonitor::restore_latest(fm.config().clone())
            .expect("restore_latest")
            .expect("checkpoint exists");
        assert_eq!(encode(&resumed), encode(&fm));
        // Point the checkpoint dir at a regular file: writes must fail,
        // and ingest_batch must degrade instead of erroring.
        let blocked = dir.join("not-a-dir");
        std::fs::write(&blocked, b"x").expect("file");
        let cfg = fm.config().clone().with_checkpointing(&blocked, 1);
        let mut fm2 = FleetMonitor::new(cfg).expect("config");
        let out = fm2.ingest_batch(&[], None).expect("ingest survives");
        assert!(matches!(
            out.checkpoint,
            super::super::fleet_monitor::CheckpointOutcome::Failed { .. }
        ));
        assert_eq!(fm2.checkpoint_failures(), 1);
        assert!(fm2.is_degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
