//! Optimisation of discontinuous data (§III-C(1)).
//!
//! Consumer telemetry is discontinuous (Fig 6). The paper's recipe:
//! * accumulate daily W/B counts into cumulative features ("the daily
//!   number of W and B is hard to detect trends"),
//! * remove data separated by long intervals (≥ 10 days),
//! * mean-fill short gaps (≤ 3 days) from the adjacent time windows.
//!
//! This module turns a raw [`DriveHistory`] into a [`CleanSeries`]: an
//! aligned vector of days and full 45-column feature rows.

use mfpa_telemetry::{DriveHistory, FirmwareVersion, SerialNumber, Vendor};
use serde::{Deserialize, Serialize};

use crate::features::{FeatureId, MODEL_W_EVENTS};

/// Gap-handling configuration (§III-C(1) constants).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Gaps of at least this many days split the series; only the most
    /// recent segment is kept (paper: "remove the data with a long
    /// interval (≥ 10)").
    pub drop_gap: i64,
    /// Gaps of at most this many days are filled with the mean of the
    /// adjacent records (paper: "fill the mean value of adjacent time
    /// windows (= 3)").
    pub fill_gap: i64,
    /// Minimum surviving segment length; shorter series are unusable for
    /// training and dropped entirely.
    pub min_len: usize,
    /// Accumulate daily W/B counts into cumulative features (the paper's
    /// choice). `false` keeps the raw daily counts — the ablation knob.
    pub cumulative_events: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            drop_gap: 10,
            fill_gap: 3,
            min_len: 5,
            cumulative_events: true,
        }
    }
}

/// A preprocessed per-drive feature series: days ascending, one full
/// 45-column row per day (observed or imputed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanSeries {
    /// The drive's serial number.
    pub serial: SerialNumber,
    /// The drive's vendor.
    pub vendor: Vendor,
    /// Day stamps, strictly ascending.
    pub days: Vec<i64>,
    /// Feature rows aligned with `days` ([`FeatureId::full_row`] order).
    pub rows: Vec<Vec<f64>>,
    /// Whether each row was imputed by gap filling.
    pub imputed: Vec<bool>,
}

impl CleanSeries {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Index of the latest row at or before `day`.
    pub fn index_at_or_before(&self, day: i64) -> Option<usize> {
        match self.days.binary_search(&day) {
            Ok(ix) => Some(ix),
            Err(0) => None,
            Err(ix) => Some(ix - 1),
        }
    }
}

/// Builds the raw (pre-gap-handling) feature rows: SMART values, encoded
/// firmware, and cumulative (or, for the ablation, daily) W/B counts per
/// observed day.
pub fn raw_rows(
    history: &DriveHistory,
    firmware: &FirmwareVersion,
    cumulative_events: bool,
) -> (Vec<i64>, Vec<Vec<f64>>) {
    let n_cols = FeatureId::full_row().len();
    let mut days = Vec::with_capacity(history.len());
    let mut rows = Vec::with_capacity(history.len());
    let mut w_cum = [0u64; 5];
    let mut b_cum = [0u64; 23];
    for rec in history.records() {
        for (slot, ev) in w_cum.iter_mut().zip(MODEL_W_EVENTS) {
            *slot += u64::from(rec.w(ev));
        }
        for (slot, code) in b_cum.iter_mut().zip(mfpa_telemetry::BsodCode::ALL) {
            *slot += u64::from(rec.b(code));
        }
        let mut row = Vec::with_capacity(n_cols);
        row.extend(rec.smart.as_slice());
        row.push(firmware.encoded());
        if cumulative_events {
            row.extend(w_cum.iter().map(|&v| v as f64));
            row.extend(b_cum.iter().map(|&v| v as f64));
        } else {
            row.extend(MODEL_W_EVENTS.iter().map(|&ev| f64::from(rec.w(ev))));
            row.extend(
                mfpa_telemetry::BsodCode::ALL
                    .iter()
                    .map(|&c| f64::from(rec.b(c))),
            );
        }
        days.push(rec.day.day());
        rows.push(row);
    }
    (days, rows)
}

/// Runs the full §III-C(1) preprocessing. Returns `None` if no usable
/// segment survives.
pub fn preprocess(
    history: &DriveHistory,
    firmware: &FirmwareVersion,
    config: &PreprocessConfig,
) -> Option<CleanSeries> {
    if history.is_empty() {
        return None;
    }
    let (days, rows) = raw_rows(history, firmware, config.cumulative_events);

    // Split at long gaps; keep the most recent segment (it contains the
    // failure for faulty drives and the freshest behaviour for healthy
    // ones).
    let mut seg_start = 0usize;
    for i in 1..days.len() {
        if days[i] - days[i - 1] >= config.drop_gap {
            seg_start = i;
        }
    }
    let days = &days[seg_start..];
    let rows = &rows[seg_start..];
    if days.len() < config.min_len {
        return None;
    }

    // Mean-fill short gaps.
    let mut out_days = Vec::with_capacity(days.len());
    let mut out_rows: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    let mut out_imputed = Vec::with_capacity(days.len());
    for i in 0..days.len() {
        if i > 0 {
            let gap = days[i] - days[i - 1];
            if gap > 1 && gap <= config.fill_gap {
                let prev = rows[i - 1].clone();
                let next = &rows[i];
                let mean: Vec<f64> = prev.iter().zip(next).map(|(a, b)| 0.5 * (a + b)).collect();
                for missing in days[i - 1] + 1..days[i] {
                    out_days.push(missing);
                    out_rows.push(mean.clone());
                    out_imputed.push(true);
                }
            }
        }
        out_days.push(days[i]);
        out_rows.push(rows[i].clone());
        out_imputed.push(false);
    }

    Some(CleanSeries {
        serial: history.serial(),
        vendor: history.serial().vendor(),
        days: out_days,
        rows: out_rows,
        imputed: out_imputed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::{
        DailyRecord, DayStamp, DriveModel, SmartAttr, SmartValues, WindowsEventId,
    };

    fn rec(day: i64, w161: u32, media: f64) -> DailyRecord {
        let mut w = [0u32; 9];
        w[WindowsEventId::W161.index()] = w161;
        let mut smart = SmartValues::default();
        smart.set(SmartAttr::MediaErrors, media);
        DailyRecord {
            day: DayStamp::new(day),
            smart,
            firmware: FirmwareVersion::new(Vendor::I, 2),
            w_counts: w,
            b_counts: [0; 23],
        }
    }

    fn history(days_w: &[(i64, u32)]) -> DriveHistory {
        DriveHistory::new(
            SerialNumber::new(Vendor::I, 1),
            DriveModel::ALL[0],
            days_w.iter().map(|&(d, w)| rec(d, w, d as f64)).collect(),
        )
    }

    fn fw() -> FirmwareVersion {
        FirmwareVersion::new(Vendor::I, 2)
    }

    #[test]
    fn w_counts_become_cumulative() {
        let h = history(&[(0, 1), (1, 0), (2, 2)]);
        let (_, rows) = raw_rows(&h, &fw(), true);
        let w161_col = FeatureId::WinEventCum(WindowsEventId::W161).full_index();
        let vals: Vec<f64> = rows.iter().map(|r| r[w161_col]).collect();
        assert_eq!(vals, vec![1.0, 1.0, 3.0]);
    }

    #[test]
    fn firmware_encoded_in_column_16() {
        let h = history(&[(0, 0)]);
        let (_, rows) = raw_rows(&h, &fw(), true);
        assert_eq!(rows[0][FeatureId::Firmware.full_index()], 2.0);
    }

    #[test]
    fn long_gap_keeps_most_recent_segment() {
        // Days 0..=2, gap of 20, then 22..=28: keep the tail segment.
        let days: Vec<(i64, u32)> = (0..3).chain(22..29).map(|d| (d, 0)).collect();
        let s = preprocess(&history(&days), &fw(), &PreprocessConfig::default()).unwrap();
        assert_eq!(s.days.first(), Some(&22));
        assert_eq!(s.days.len(), 7);
        assert!(s.imputed.iter().all(|&i| !i));
    }

    #[test]
    fn short_survivor_is_dropped() {
        let days: Vec<(i64, u32)> = [0, 1, 2, 3, 4, 30, 31].iter().map(|&d| (d, 0)).collect();
        assert!(preprocess(&history(&days), &fw(), &PreprocessConfig::default()).is_none());
    }

    #[test]
    fn small_gaps_are_mean_filled() {
        // Days 0, 3: gap of 3 → days 1 and 2 imputed as the mean.
        let days: Vec<(i64, u32)> = [0, 3, 4, 5, 6].iter().map(|&d| (d, 0)).collect();
        let s = preprocess(&history(&days), &fw(), &PreprocessConfig::default()).unwrap();
        assert_eq!(s.days, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(
            s.imputed,
            vec![false, true, true, false, false, false, false]
        );
        // Media errors were set to the day number → imputed = mean(0, 3).
        let media_col = FeatureId::Smart(SmartAttr::MediaErrors).full_index();
        assert_eq!(s.rows[1][media_col], 1.5);
        assert_eq!(s.rows[2][media_col], 1.5);
    }

    #[test]
    fn medium_gaps_are_tolerated_unfilled() {
        // Gap of 6: below drop threshold, above fill threshold.
        let days: Vec<(i64, u32)> = [0, 1, 2, 8, 9, 10].iter().map(|&d| (d, 0)).collect();
        let s = preprocess(&history(&days), &fw(), &PreprocessConfig::default()).unwrap();
        assert_eq!(s.days, vec![0, 1, 2, 8, 9, 10]);
    }

    #[test]
    fn empty_history_is_none() {
        let h = DriveHistory::new(SerialNumber::new(Vendor::I, 1), DriveModel::ALL[0], vec![]);
        assert!(preprocess(&h, &fw(), &PreprocessConfig::default()).is_none());
    }

    #[test]
    fn index_lookup() {
        let days: Vec<(i64, u32)> = [5, 6, 7, 8, 9].iter().map(|&d| (d, 0)).collect();
        let s = preprocess(&history(&days), &fw(), &PreprocessConfig::default()).unwrap();
        assert_eq!(s.index_at_or_before(4), None);
        assert_eq!(s.index_at_or_before(5), Some(0));
        assert_eq!(s.index_at_or_before(100), Some(4));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn paper_fig6_f3_example_dropped() {
        // F3 has logs at (0, 11-14): the 11-day gap splits it; the tail
        // (11..=14) has 4 points < min_len → unusable, as in the paper.
        let days: Vec<(i64, u32)> = [0, 11, 12, 13, 14].iter().map(|&d| (d, 0)).collect();
        assert!(preprocess(&history(&days), &fw(), &PreprocessConfig::default()).is_none());
    }
}
