//! Sample construction: positive pre-failure windows, lookahead shift,
//! negative sampling, and aligned sequence windows for CNN_LSTM.
//!
//! §III-C(3): "Faulty SSDs data collected within 7, 14, or 21 days before
//! failures are generally selected as positive samples. The negative
//! samples are selected from the healthy SSDs." The lookahead sweep
//! (Fig 19) shifts the positive window N days away from the failure: a
//! model asked to alarm N days in advance only sees data at least N days
//! old relative to the failure.

use std::collections::BTreeMap;

use mfpa_dataset::{DatasetError, FeatureFrame, SampleMeta};
use mfpa_telemetry::SerialNumber;
use serde::{Deserialize, Serialize};

use crate::features::FeatureId;
use crate::preprocess::CleanSeries;

/// Sample-window configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Days before the failure whose rows become positive samples.
    pub positive_window: i64,
    /// Lookahead N: the positive window ends N days *before* the failure.
    pub lookahead: i64,
    /// Sequence length for the aligned CNN_LSTM view.
    pub seq_len: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            positive_window: 14,
            lookahead: 0,
            seq_len: 5,
        }
    }
}

/// The assembled sample set: a flat per-day view (45 columns) and an
/// aligned sequence view (`seq_len × 45` columns) over the same rows.
#[derive(Debug, Clone)]
pub struct SampleSet {
    /// One row per selected drive-day, full feature row.
    pub flat: FeatureFrame,
    /// The same rows as trailing windows of `seq_len` days (oldest
    /// first, front-padded by repeating the earliest row).
    pub seq: FeatureFrame,
    /// Labelled failures whose positive window contained no telemetry
    /// (`(group, label day)`): the paper's "faulty disks with no data
    /// around IMT − θ". They are unpredictable by construction and must
    /// count as drive-level misses during evaluation.
    pub unwindowed_failures: Vec<(u64, i64)>,
}

/// A stable numeric group handle for a drive (vendor in the high bits).
pub fn group_of(serial: SerialNumber) -> u64 {
    ((serial.vendor().index() as u64) << 48) | (serial.id() & 0xFFFF_FFFF_FFFF)
}

/// Builds samples from preprocessed series.
///
/// `failure_days` maps ticketed drives to their θ-identified failure day.
/// Rows of failed drives inside the (lookahead-shifted) positive window
/// become positives; *all* rows of unticketed drives become negatives;
/// rows of failed drives outside the window are discarded (their health
/// state is ambiguous).
///
/// # Errors
///
/// Returns a [`DatasetError`] only on internal width mismatches (a bug),
/// so callers can `?` it.
pub fn build_samples(
    series: &[CleanSeries],
    failure_days: &BTreeMap<SerialNumber, i64>,
    config: &WindowConfig,
) -> Result<SampleSet, DatasetError> {
    build_samples_for(series, failure_days, config, true)
}

/// [`build_samples`] with control over the sequence view: flat-only
/// callers (tree/linear models) can skip it, halving sample-assembly
/// time and memory. When skipped, `seq` is an empty frame.
///
/// # Errors
///
/// Same as [`build_samples`].
pub fn build_samples_for(
    series: &[CleanSeries],
    failure_days: &BTreeMap<SerialNumber, i64>,
    config: &WindowConfig,
    build_seq: bool,
) -> Result<SampleSet, DatasetError> {
    let names: Vec<String> = FeatureId::full_row()
        .iter()
        .map(|f| f.to_string())
        .collect();
    let n_cols = names.len();
    let seq_names: Vec<String> = (0..config.seq_len)
        .flat_map(|t| {
            let back = config.seq_len - 1 - t;
            names.iter().map(move |n| format!("t-{back}:{n}"))
        })
        .collect();
    let mut flat = FeatureFrame::new(names);
    let mut seq = FeatureFrame::new(seq_names);

    let mut seq_buf = vec![0.0; config.seq_len * n_cols];
    let mut unwindowed_failures = Vec::new();
    for s in series {
        let fail = failure_days.get(&s.serial).copied();
        let group = group_of(s.serial);
        let tag = s.vendor.index() as u32;
        let mut emitted_positive = false;
        for (ix, (&day, row)) in s.days.iter().zip(&s.rows).enumerate() {
            let label = match fail {
                Some(fd) => {
                    let hi = fd - config.lookahead;
                    let lo = hi - config.positive_window + 1;
                    if day > hi || day < lo {
                        continue; // ambiguous region of a faulty drive
                    }
                    emitted_positive = true;
                    true
                }
                None => false,
            };
            let meta = SampleMeta::with_tag(group, day, tag);
            flat.push_row(row, meta, label)?;
            if build_seq {
                // Trailing window, oldest first, front-padded with row 0.
                for t in 0..config.seq_len {
                    let back = config.seq_len - 1 - t;
                    let src = ix.saturating_sub(back);
                    seq_buf[t * n_cols..(t + 1) * n_cols].copy_from_slice(&s.rows[src]);
                }
                seq.push_row(&seq_buf, meta, label)?;
            }
        }
        if let Some(fd) = fail {
            if !emitted_positive {
                unwindowed_failures.push((group, fd - config.lookahead));
            }
        }
    }
    Ok(SampleSet {
        flat,
        seq,
        unwindowed_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::Vendor;

    fn series(id: u64, days: &[i64]) -> CleanSeries {
        CleanSeries {
            serial: SerialNumber::new(Vendor::I, id),
            vendor: Vendor::I,
            days: days.to_vec(),
            rows: days
                .iter()
                .map(|&d| {
                    let mut r = vec![0.0; 45];
                    r[0] = d as f64; // marker feature
                    r
                })
                .collect(),
            imputed: vec![false; days.len()],
        }
    }

    fn labels(id: u64, day: i64) -> BTreeMap<SerialNumber, i64> {
        let mut m = BTreeMap::new();
        m.insert(SerialNumber::new(Vendor::I, id), day);
        m
    }

    #[test]
    fn positive_window_selects_pre_failure_rows() {
        let s = series(1, &(0..=50).collect::<Vec<_>>());
        let cfg = WindowConfig {
            positive_window: 7,
            lookahead: 0,
            seq_len: 3,
        };
        let set = build_samples(&[s], &labels(1, 50), &cfg).unwrap();
        // Days 44..=50 are positive; earlier days discarded.
        assert_eq!(set.flat.n_rows(), 7);
        assert!(set.flat.labels().iter().all(|&l| l));
        let times = set.flat.times();
        assert_eq!(*times.iter().min().unwrap(), 44);
        assert_eq!(*times.iter().max().unwrap(), 50);
    }

    #[test]
    fn lookahead_shifts_window_back() {
        let s = series(1, &(0..=50).collect::<Vec<_>>());
        let cfg = WindowConfig {
            positive_window: 7,
            lookahead: 10,
            seq_len: 3,
        };
        let set = build_samples(&[s], &labels(1, 50), &cfg).unwrap();
        let times = set.flat.times();
        assert_eq!(*times.iter().max().unwrap(), 40);
        assert_eq!(*times.iter().min().unwrap(), 34);
    }

    #[test]
    fn healthy_rows_all_negative() {
        let s = series(2, &[0, 1, 2, 3]);
        let set = build_samples(&[s], &BTreeMap::new(), &WindowConfig::default()).unwrap();
        assert_eq!(set.flat.n_rows(), 4);
        assert_eq!(set.flat.n_positive(), 0);
    }

    #[test]
    fn seq_view_aligned_and_padded() {
        let s = series(3, &[10, 11, 12]);
        let cfg = WindowConfig {
            positive_window: 14,
            lookahead: 0,
            seq_len: 3,
        };
        let set = build_samples(&[s], &BTreeMap::new(), &cfg).unwrap();
        assert_eq!(set.seq.n_rows(), set.flat.n_rows());
        assert_eq!(set.seq.n_cols(), 3 * 45);
        // First row: all three steps padded with day-10's row.
        let r0 = set.seq.matrix().row(0);
        assert_eq!(r0[0], 10.0);
        assert_eq!(r0[45], 10.0);
        assert_eq!(r0[90], 10.0);
        // Last row: steps are days 10, 11, 12 in order.
        let r2 = set.seq.matrix().row(2);
        assert_eq!((r2[0], r2[45], r2[90]), (10.0, 11.0, 12.0));
        // Metadata mirrors the flat view.
        assert_eq!(set.seq.meta(), set.flat.meta());
    }

    #[test]
    fn groups_distinguish_drives_and_vendors() {
        let a = group_of(SerialNumber::new(Vendor::I, 5));
        let b = group_of(SerialNumber::new(Vendor::II, 5));
        let c = group_of(SerialNumber::new(Vendor::I, 6));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn failed_drive_without_window_rows_contributes_nothing() {
        // All data ends 30 days before the labelled failure.
        let s = series(4, &[0, 1, 2, 3, 4]);
        let set = build_samples(&[s], &labels(4, 40), &WindowConfig::default()).unwrap();
        assert_eq!(set.flat.n_rows(), 0);
    }
}
