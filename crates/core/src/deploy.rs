//! Client-side deployment: incremental per-drive scoring.
//!
//! §IV Fig 20: "Microsecond prediction can be achieved for the model
//! deployed on the client side. The model is iterated every two months
//! and pushed to the user for updates." A [`DriveMonitor`] lives on one
//! machine, ingests that machine's daily telemetry record, maintains the
//! cumulative multidimensional feature row incrementally, and scores it
//! against a trained MFPA model — no batch pipeline required.

use mfpa_dataset::Matrix;
use mfpa_fleetsim::SimulatedDrive;
use mfpa_par::{ordered_map, Workers};
use mfpa_telemetry::{BsodCode, DailyRecord, DayStamp, FirmwareVersion, SerialNumber, SmartAttr};

use crate::error::CoreError;
use crate::features::{FeatureId, MODEL_W_EVENTS};
use crate::pipeline::TrainedMfpa;
use crate::sanitize::{page_violation, QuarantineCause, SanitizeConfig, SanitizeReport};

/// Incremental feature state for one monitored drive.
///
/// Feed records chronologically via [`DriveMonitor::ingest`]; each call
/// returns the current full 45-column feature row. [`DriveMonitor::score`]
/// additionally runs a trained (flat) MFPA model over it.
///
/// # Example
///
/// ```
/// use mfpa_core::deploy::DriveMonitor;
/// use mfpa_telemetry::{DailyRecord, DayStamp, FirmwareVersion, SerialNumber,
///                      SmartValues, Vendor};
///
/// let fw = FirmwareVersion::new(Vendor::I, 2);
/// let mut monitor = DriveMonitor::new(SerialNumber::new(Vendor::I, 1), fw.clone());
/// let record = DailyRecord {
///     day: DayStamp::new(0),
///     smart: SmartValues::default(),
///     firmware: fw,
///     w_counts: [1, 0, 0, 0, 0, 0, 0, 0, 0],
///     b_counts: [0; 23],
/// };
/// let row = monitor.ingest(&record)?;
/// assert_eq!(row.len(), 45);
/// # Ok::<(), mfpa_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DriveMonitor {
    // Fields are crate-visible so the fleet monitor's checkpoint codec
    // ([`crate::checkpoint`]) can snapshot and restore a monitor
    // bit-for-bit without an intermediate copy.
    pub(crate) serial: SerialNumber,
    pub(crate) firmware: FirmwareVersion,
    pub(crate) w_cum: [u64; 5],
    pub(crate) b_cum: [u64; 23],
    pub(crate) last_day: Option<DayStamp>,
    pub(crate) sanitize_cfg: SanitizeConfig,
    // Last accepted (repaired) SMART page: NaN carry-forward source.
    pub(crate) last_smart: Option<[f64; 16]>,
    // Rollover base offsets per cumulative attribute.
    pub(crate) smart_offsets: [f64; 16],
    // Row returned for the last accepted day — replayed for exact
    // duplicate deliveries so retransmissions are idempotent.
    pub(crate) last_row: Vec<f64>,
    pub(crate) report: SanitizeReport,
}

impl DriveMonitor {
    /// Creates a monitor for one drive, with the default online
    /// sanitization policy.
    pub fn new(serial: SerialNumber, firmware: FirmwareVersion) -> Self {
        DriveMonitor::with_sanitize(serial, firmware, SanitizeConfig::default())
    }

    /// Creates a monitor with an explicit online sanitization policy.
    pub fn with_sanitize(
        serial: SerialNumber,
        firmware: FirmwareVersion,
        sanitize_cfg: SanitizeConfig,
    ) -> Self {
        DriveMonitor {
            serial,
            firmware,
            w_cum: [0; 5],
            b_cum: [0; 23],
            last_day: None,
            sanitize_cfg,
            last_smart: None,
            smart_offsets: [0.0; 16],
            last_row: Vec::new(),
            report: SanitizeReport::default(),
        }
    }

    /// The monitored drive's serial.
    pub fn serial(&self) -> SerialNumber {
        self.serial
    }

    /// The last ingested day, if any.
    pub fn last_day(&self) -> Option<DayStamp> {
        self.last_day
    }

    /// Online-sanitization accounting over this monitor's lifetime:
    /// quarantined deliveries, imputed attributes, rollover repairs and
    /// collapsed duplicates.
    pub fn sanitize_report(&self) -> &SanitizeReport {
        &self.report
    }

    /// Ingests one daily record and returns the current full feature row
    /// (canonical [`FeatureId::full_row`] order).
    ///
    /// The monitor applies the same defenses as the offline
    /// [`crate::sanitize`] stage, restricted to what an online,
    /// no-lookahead consumer can do: sentinel/range pages are
    /// quarantined, an exact re-delivery of the newest day is answered
    /// idempotently with the same row (a retransmission must not double
    /// the cumulative counters), NaN attributes are filled from the last
    /// accepted page, and cumulative counters that run backwards are
    /// spliced with a base offset (rollover repair).
    ///
    /// # Errors
    ///
    /// * [`CoreError::OutOfOrderRecord`] for a record *before* the
    ///   newest ingested day — an online consumer cannot re-sequence.
    /// * [`CoreError::CorruptRecord`] for quarantined deliveries
    ///   (sentinel page, out-of-range value, or missing attributes with
    ///   no history to impute from).
    pub fn ingest(&mut self, record: &DailyRecord) -> Result<Vec<f64>, CoreError> {
        self.ingest_ref(record).map(<[f64]>::to_vec)
    }

    /// [`DriveMonitor::ingest`] without the row copy: returns a borrow
    /// of the monitor's internal row buffer, which is overwritten by
    /// the next accepted record. This is the allocation-free hot path
    /// used by the fleet-wide scoring sweeps.
    ///
    /// # Errors
    ///
    /// Same as [`DriveMonitor::ingest`].
    pub fn ingest_ref(&mut self, record: &DailyRecord) -> Result<&[f64], CoreError> {
        self.report.input_records += 1;
        let reference_capacity = self
            .last_smart
            .map(|p| p[SmartAttr::Capacity.index()])
            .filter(|&c| c > 0.0);
        if let Some(violation) = page_violation(record, reference_capacity, &self.sanitize_cfg) {
            match violation {
                QuarantineCause::SentinelReset => self.report.quarantined_sentinel += 1,
                _ => self.report.quarantined_range += 1,
            }
            return Err(CoreError::CorruptRecord {
                serial: self.serial,
                day: record.day,
                cause: violation,
            });
        }
        if let Some(last) = self.last_day {
            if record.day == last {
                // Duplicate delivery of the current day: idempotent.
                self.report.duplicates_collapsed += 1;
                return Ok(&self.last_row);
            }
            if record.day < last {
                self.report.quarantined_late += 1;
                return Err(CoreError::OutOfOrderRecord {
                    serial: self.serial,
                    day: record.day,
                    last,
                });
            }
        }

        // Repair the SMART page: impute NaNs, then splice rollovers.
        let mut smart = [0.0f64; 16];
        smart.copy_from_slice(record.smart.as_slice());
        for (ix, v) in smart.iter_mut().enumerate() {
            if v.is_nan() {
                match self.last_smart {
                    Some(prev) => {
                        *v = prev[ix];
                        self.report.values_imputed += 1;
                    }
                    None => {
                        self.report.quarantined_missing += 1;
                        return Err(CoreError::CorruptRecord {
                            serial: self.serial,
                            day: record.day,
                            cause: QuarantineCause::MissingValues,
                        });
                    }
                }
            }
        }
        for attr in SmartAttr::ALL {
            if !attr.is_cumulative() {
                continue;
            }
            let ix = attr.index();
            let adjusted = smart[ix] + self.smart_offsets[ix];
            let prev = self.last_smart.map_or(f64::NEG_INFINITY, |p| p[ix]);
            if adjusted < prev {
                self.smart_offsets[ix] += prev - adjusted;
                self.report.rollovers_repaired += 1;
                smart[ix] = prev;
            } else {
                smart[ix] = adjusted;
            }
        }

        self.last_day = Some(record.day);
        self.last_smart = Some(smart);
        // Firmware updates in the field are tracked as they appear.
        if record.firmware != self.firmware {
            self.firmware = record.firmware.clone();
        }
        for (slot, ev) in self.w_cum.iter_mut().zip(MODEL_W_EVENTS) {
            *slot += u64::from(record.w(ev));
        }
        for (slot, code) in self.b_cum.iter_mut().zip(BsodCode::ALL) {
            *slot += u64::from(record.b(code));
        }
        self.report.kept_records += 1;

        // Rebuild the row in place. After the first accepted record the
        // buffer is full-width, so this is straight slice stores — no
        // allocation, no length bookkeeping per record.
        if self.last_row.len() != 45 {
            self.last_row.resize(45, 0.0);
        }
        let row = &mut self.last_row[..45];
        row[..16].copy_from_slice(&smart);
        row[16] = self.firmware.encoded();
        for (slot, &v) in row[17..22].iter_mut().zip(&self.w_cum) {
            *slot = v as f64;
        }
        for (slot, &v) in row[22..45].iter_mut().zip(&self.b_cum) {
            *slot = v as f64;
        }
        debug_assert_eq!(self.last_row.len(), FeatureId::full_row().len());
        Ok(&self.last_row)
    }

    /// Ingests one record and scores it with a trained flat-feature MFPA
    /// model, returning the failure probability.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedModel`] for a sequence model
    /// (CNN_LSTM needs windows, not single rows), propagates
    /// [`DriveMonitor::ingest`]'s telemetry errors and prediction errors.
    pub fn score(&mut self, record: &DailyRecord, trained: &TrainedMfpa) -> Result<f64, CoreError> {
        if trained.uses_sequence() {
            return Err(CoreError::UnsupportedModel(
                "DriveMonitor scores flat models; sequence models need windowed input".into(),
            ));
        }
        let full = self.ingest(record)?;
        let selected: Vec<f64> = trained
            .features()
            .iter()
            .map(|f| full[f.full_index()])
            .collect();
        let x = Matrix::from_rows(std::slice::from_ref(&selected))?;
        Ok(trained.predict_matrix(&x)?[0])
    }
}

/// One drive's outcome from [`score_fleet`]: the replayed monitor's peak
/// and final probabilities plus its online-sanitization accounting.
#[derive(Debug, Clone)]
pub struct DriveScore {
    /// The drive's serial.
    pub serial: SerialNumber,
    /// Highest probability any accepted record scored.
    pub max_score: f64,
    /// Probability of the last accepted record (0 if none were accepted).
    pub last_score: f64,
    /// Records that were accepted and scored.
    pub n_scored: usize,
    /// The monitor's sanitization accounting (quarantines, repairs).
    pub report: SanitizeReport,
}

/// Replays every drive's raw emission stream through its own
/// [`DriveMonitor`] and scores each accepted record against `trained` —
/// the server-side "iterate the model, re-score the fleet" batch job.
///
/// Drives are scored on the deterministic parallel layer ([`mfpa_par`]):
/// each worker replays whole drives, results come back in input order,
/// and the scores are bit-identical at any worker count (`n_threads`,
/// `0` = automatic). Records the monitor quarantines (corrupt or
/// out-of-order deliveries) are skipped and show up in the per-drive
/// [`SanitizeReport`], exactly as they would on the client.
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedModel`] for a sequence model and
/// propagates prediction errors.
pub fn score_fleet(
    drives: &[SimulatedDrive],
    trained: &TrainedMfpa,
    n_threads: usize,
) -> Result<Vec<DriveScore>, CoreError> {
    if trained.uses_sequence() {
        return Err(CoreError::UnsupportedModel(
            "score_fleet scores flat models; sequence models need windowed input".into(),
        ));
    }
    // Serving-grade path: when the model carries a compiled engine
    // (the `MfpaConfig::compile` knob or `TrainedMfpa::compile`), each
    // drive's accepted rows stream through an incremental sequential
    // scorer. Probabilities are bit-identical to the interpreted path.
    if let Some(compiled) = trained.compiled() {
        return score_fleet_compiled(drives, trained, compiled, n_threads);
    }
    let results = ordered_map(
        drives,
        Workers::from_config(n_threads),
        |_, drive| -> Result<DriveScore, CoreError> {
            let mut monitor = DriveMonitor::new(drive.serial(), drive.firmware().clone());
            let mut max_score = 0.0f64;
            let mut last_score = 0.0f64;
            let mut n_scored = 0usize;
            for record in drive.raw_records() {
                match monitor.score(record, trained) {
                    Ok(p) => {
                        max_score = max_score.max(p);
                        last_score = p;
                        n_scored += 1;
                    }
                    Err(CoreError::CorruptRecord { .. } | CoreError::OutOfOrderRecord { .. }) => {}
                    Err(other) => return Err(other),
                }
            }
            Ok(DriveScore {
                serial: drive.serial(),
                max_score,
                last_score,
                n_scored,
                report: *monitor.sanitize_report(),
            })
        },
    );
    results.into_iter().collect()
}

/// Which of the model's selected features are non-decreasing over one
/// drive's accepted record stream. Cumulative SMART counters (the
/// rollover splice enforces the monotonicity online), Windows-event and
/// BSOD counters qualify; firmware encoding and gauge attributes do
/// not. This is a performance hint for [`mfpa_ml::SequentialScorer`] — it
/// re-verifies per record, so a wrong entry costs speed, never
/// correctness.
fn monotone_mask(features: &[FeatureId]) -> Vec<bool> {
    features
        .iter()
        .map(|f| match f {
            FeatureId::Smart(attr) => attr.is_cumulative(),
            FeatureId::Firmware => false,
            FeatureId::WinEventCum(_) | FeatureId::BsodCum(_) => true,
        })
        .collect()
}

/// The compiled [`score_fleet`] arm: replays each drive allocation-free
/// ([`DriveMonitor::ingest_ref`]), gathers the model's selected columns
/// and scores the stream with [`mfpa_ml::SequentialScorer`]. Per-drive work is
/// self-contained, so scores stay bit-identical at any worker count.
fn score_fleet_compiled(
    drives: &[SimulatedDrive],
    trained: &TrainedMfpa,
    compiled: &mfpa_ml::CompiledEnsemble,
    n_threads: usize,
) -> Result<Vec<DriveScore>, CoreError> {
    let monotone = monotone_mask(trained.features());
    let selected: Vec<usize> = trained
        .features()
        .iter()
        .map(FeatureId::full_index)
        .collect();
    // Full-width feature groups select every column in order; the
    // gather then degenerates to a memcpy of the monitor's row.
    let identity = selected.iter().enumerate().all(|(k, &i)| k == i);
    let workers = Workers::from_config(n_threads);
    // Chunk the fleet so each worker amortizes one scorer (and its
    // row/probability buffers) across many drives. Per-drive scoring is
    // self-contained — `SequentialScorer::reset` drops every bit of
    // cross-drive state — so the chunk layout cannot leak into scores.
    let ranges = mfpa_par::chunk_ranges(drives.len(), workers.get().max(1) * 4);
    let per_chunk = ordered_map(
        &ranges,
        workers,
        |_, range| -> Result<Vec<DriveScore>, CoreError> {
            let mut scorer = compiled.sequential(&monotone)?;
            let mut rows: Vec<f64> = Vec::with_capacity(selected.len() * 256);
            let mut probs: Vec<f64> = Vec::with_capacity(256);
            let mut scores = Vec::with_capacity(range.len());
            for drive in &drives[range.clone()] {
                let mut monitor = DriveMonitor::new(drive.serial(), drive.firmware().clone());
                rows.clear();
                let mut n_scored = 0usize;
                for record in drive.raw_records() {
                    match monitor.ingest_ref(record) {
                        Ok(full) => {
                            if identity {
                                rows.extend_from_slice(&full[..selected.len()]);
                            } else {
                                rows.extend(selected.iter().map(|&i| full[i]));
                            }
                            n_scored += 1;
                        }
                        Err(
                            CoreError::CorruptRecord { .. } | CoreError::OutOfOrderRecord { .. },
                        ) => {}
                        Err(other) => return Err(other),
                    }
                }
                scorer.reset();
                probs.clear();
                scorer.score_rows(&rows, &mut probs)?;
                let mut max_score = 0.0f64;
                let mut last_score = 0.0f64;
                for &p in &probs {
                    max_score = max_score.max(p);
                    last_score = p;
                }
                scores.push(DriveScore {
                    serial: drive.serial(),
                    max_score,
                    last_score,
                    n_scored,
                    report: *monitor.sanitize_report(),
                });
            }
            Ok(scores)
        },
    );
    let mut out = Vec::with_capacity(drives.len());
    for chunk in per_chunk {
        out.extend(chunk?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::{SmartValues, Vendor, WindowsEventId};

    fn record(day: i64, w161: u32) -> DailyRecord {
        let mut w = [0u32; 9];
        w[WindowsEventId::W161.index()] = w161;
        DailyRecord {
            day: DayStamp::new(day),
            smart: SmartValues::default(),
            firmware: FirmwareVersion::new(Vendor::I, 1),
            w_counts: w,
            b_counts: [0; 23],
        }
    }

    fn monitor() -> DriveMonitor {
        DriveMonitor::new(
            SerialNumber::new(Vendor::I, 1),
            FirmwareVersion::new(Vendor::I, 1),
        )
    }

    #[test]
    fn accumulates_event_counters() {
        let mut m = monitor();
        let w161_col = FeatureId::WinEventCum(WindowsEventId::W161).full_index();
        let r1 = m.ingest(&record(0, 2)).unwrap();
        let r2 = m.ingest(&record(3, 1)).unwrap();
        assert_eq!(r1[w161_col], 2.0);
        assert_eq!(r2[w161_col], 3.0);
        assert_eq!(m.last_day(), Some(DayStamp::new(3)));
    }

    #[test]
    fn rejects_out_of_order_records_with_structure() {
        let mut m = monitor();
        m.ingest(&record(5, 0)).unwrap();
        match m.ingest(&record(4, 0)) {
            Err(CoreError::OutOfOrderRecord { serial, day, last }) => {
                assert_eq!(serial, m.serial());
                assert_eq!(day, DayStamp::new(4));
                assert_eq!(last, DayStamp::new(5));
            }
            other => panic!("expected OutOfOrderRecord, got {other:?}"),
        }
        assert_eq!(m.sanitize_report().quarantined_late, 1);
    }

    #[test]
    fn duplicate_day_is_idempotent() {
        let mut m = monitor();
        let first = m.ingest(&record(5, 2)).unwrap();
        // A retransmission of the same day must not double the
        // cumulative counters — the original row is replayed.
        let replay = m.ingest(&record(5, 2)).unwrap();
        assert_eq!(first, replay);
        assert_eq!(m.sanitize_report().duplicates_collapsed, 1);
        let w161_col = FeatureId::WinEventCum(WindowsEventId::W161).full_index();
        let next = m.ingest(&record(6, 1)).unwrap();
        assert_eq!(next[w161_col], 3.0, "duplicate must not have accumulated");
    }

    #[test]
    fn quarantines_sentinel_pages_and_imputes_nans() {
        use mfpa_telemetry::SmartAttr;
        let mut m = monitor();
        // Leading NaN with no history: quarantined.
        let mut r0 = record(0, 0);
        r0.smart.set(SmartAttr::MediaErrors, f64::NAN);
        assert!(matches!(
            m.ingest(&r0),
            Err(CoreError::CorruptRecord {
                cause: crate::sanitize::QuarantineCause::MissingValues,
                ..
            })
        ));
        let mut r1 = record(1, 0);
        r1.smart.set(SmartAttr::CompositeTemperature, 40.0);
        m.ingest(&r1).unwrap();
        // Sentinel page: quarantined, state untouched.
        let mut r2 = record(2, 0);
        for attr in SmartAttr::ALL {
            r2.smart.set(attr, u64::MAX as f64);
        }
        assert!(matches!(
            m.ingest(&r2),
            Err(CoreError::CorruptRecord { .. })
        ));
        assert_eq!(m.last_day(), Some(DayStamp::new(1)));
        // NaN with history: carried forward from the last accepted page.
        let mut r3 = record(3, 0);
        r3.smart.set(SmartAttr::CompositeTemperature, f64::NAN);
        let row = m.ingest(&r3).unwrap();
        assert_eq!(row[SmartAttr::CompositeTemperature.index()], 40.0);
        let rep = m.sanitize_report();
        assert_eq!(rep.quarantined_sentinel, 1);
        assert_eq!(rep.quarantined_missing, 1);
        assert_eq!(rep.values_imputed, 1);
        assert_eq!(rep.kept_records, 2);
    }

    #[test]
    fn repairs_counter_rollovers_online() {
        use mfpa_telemetry::SmartAttr;
        let mut m = monitor();
        let poh_col = SmartAttr::PowerOnHours.index();
        let mut r0 = record(0, 0);
        r0.smart.set(SmartAttr::PowerOnHours, 500.0);
        assert_eq!(m.ingest(&r0).unwrap()[poh_col], 500.0);
        // Counter wraps: the raw reading restarts near zero.
        let mut r1 = record(1, 0);
        r1.smart.set(SmartAttr::PowerOnHours, 10.0);
        assert_eq!(m.ingest(&r1).unwrap()[poh_col], 500.0);
        let mut r2 = record(2, 0);
        r2.smart.set(SmartAttr::PowerOnHours, 34.0);
        // Keeps accumulating on the spliced base.
        assert_eq!(m.ingest(&r2).unwrap()[poh_col], 524.0);
        assert_eq!(m.sanitize_report().rollovers_repaired, 1);
    }

    #[test]
    fn tracks_firmware_updates() {
        let mut m = monitor();
        let mut rec = record(0, 0);
        rec.firmware = FirmwareVersion::new(Vendor::I, 3);
        let row = m.ingest(&rec).unwrap();
        assert_eq!(row[FeatureId::Firmware.full_index()], 3.0);
    }

    #[test]
    fn scores_against_a_trained_pipeline() {
        use crate::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
        use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

        let fleet =
            SimulatedFleet::generate(&FleetConfig::tiny(21).with_population_fraction(0.001));
        let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
        let prepared = mfpa.prepare(&fleet).expect("prepare");
        let all: Vec<usize> = (0..prepared.n_rows()).collect();
        let trained = mfpa.train_rows(&prepared, &all).expect("train");

        // Replay a healthy drive through the monitor: scores stay low.
        let healthy = fleet
            .drives()
            .iter()
            .find(|d| d.truth().is_none())
            .expect("healthy");
        let mut m = DriveMonitor::new(healthy.serial(), healthy.firmware().clone());
        let mut max_p: f64 = 0.0;
        for rec in healthy.history().records() {
            max_p = max_p.max(m.score(rec, &trained).expect("score"));
        }
        assert!(max_p < 0.9, "healthy drive peaked at {max_p}");

        // Replay a loud faulty drive: the final score should be higher
        // than the healthy drive's peak.
        let faulty = fleet
            .drives()
            .iter()
            .filter(|d| d.truth().is_some())
            .max_by_key(|d| {
                d.history()
                    .records()
                    .iter()
                    .map(|r| r.event_total())
                    .sum::<u32>()
            })
            .expect("faulty");
        let mut m = DriveMonitor::new(faulty.serial(), faulty.firmware().clone());
        let mut last_p = 0.0;
        for rec in faulty.history().records() {
            last_p = m.score(rec, &trained).expect("score");
        }
        assert!(
            last_p > max_p,
            "faulty final {last_p} vs healthy peak {max_p}"
        );

        // Batch scoring replays the same monitors: the healthy drive's
        // entry must agree with the hand-rolled replay above, and the
        // whole score table must be bit-identical at any worker count.
        let reference = score_fleet(fleet.drives(), &trained, 1).expect("score_fleet");
        assert_eq!(reference.len(), fleet.drives().len());
        let healthy_ix = fleet
            .drives()
            .iter()
            .position(|d| d.serial() == healthy.serial())
            .unwrap();
        assert_eq!(reference[healthy_ix].max_score.to_bits(), max_p.to_bits());
        let faulty_ix = fleet
            .drives()
            .iter()
            .position(|d| d.serial() == faulty.serial())
            .unwrap();
        assert_eq!(reference[faulty_ix].last_score.to_bits(), last_p.to_bits());
        for n in [2, 7] {
            let scores = score_fleet(fleet.drives(), &trained, n).expect("score_fleet");
            for (a, b) in scores.iter().zip(&reference) {
                assert_eq!(a.serial, b.serial, "n_threads = {n}");
                assert_eq!(a.max_score.to_bits(), b.max_score.to_bits());
                assert_eq!(a.last_score.to_bits(), b.last_score.to_bits());
                assert_eq!(a.n_scored, b.n_scored);
                assert_eq!(a.report, b.report);
            }
        }
    }
}
