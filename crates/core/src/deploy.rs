//! Client-side deployment: incremental per-drive scoring.
//!
//! §IV Fig 20: "Microsecond prediction can be achieved for the model
//! deployed on the client side. The model is iterated every two months
//! and pushed to the user for updates." A [`DriveMonitor`] lives on one
//! machine, ingests that machine's daily telemetry record, maintains the
//! cumulative multidimensional feature row incrementally, and scores it
//! against a trained MFPA model — no batch pipeline required.

use mfpa_dataset::Matrix;
use mfpa_telemetry::{BsodCode, DailyRecord, DayStamp, FirmwareVersion, SerialNumber};

use crate::error::CoreError;
use crate::features::{FeatureId, MODEL_W_EVENTS};
use crate::pipeline::TrainedMfpa;

/// Incremental feature state for one monitored drive.
///
/// Feed records chronologically via [`DriveMonitor::ingest`]; each call
/// returns the current full 45-column feature row. [`DriveMonitor::score`]
/// additionally runs a trained (flat) MFPA model over it.
///
/// # Example
///
/// ```
/// use mfpa_core::deploy::DriveMonitor;
/// use mfpa_telemetry::{DailyRecord, DayStamp, FirmwareVersion, SerialNumber,
///                      SmartValues, Vendor};
///
/// let fw = FirmwareVersion::new(Vendor::I, 2);
/// let mut monitor = DriveMonitor::new(SerialNumber::new(Vendor::I, 1), fw.clone());
/// let record = DailyRecord {
///     day: DayStamp::new(0),
///     smart: SmartValues::default(),
///     firmware: fw,
///     w_counts: [1, 0, 0, 0, 0, 0, 0, 0, 0],
///     b_counts: [0; 23],
/// };
/// let row = monitor.ingest(&record)?;
/// assert_eq!(row.len(), 45);
/// # Ok::<(), mfpa_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DriveMonitor {
    serial: SerialNumber,
    firmware: FirmwareVersion,
    w_cum: [u64; 5],
    b_cum: [u64; 23],
    last_day: Option<DayStamp>,
}

impl DriveMonitor {
    /// Creates a monitor for one drive.
    pub fn new(serial: SerialNumber, firmware: FirmwareVersion) -> Self {
        DriveMonitor { serial, firmware, w_cum: [0; 5], b_cum: [0; 23], last_day: None }
    }

    /// The monitored drive's serial.
    pub fn serial(&self) -> SerialNumber {
        self.serial
    }

    /// The last ingested day, if any.
    pub fn last_day(&self) -> Option<DayStamp> {
        self.last_day
    }

    /// Ingests one daily record and returns the current full feature row
    /// (canonical [`FeatureId::full_row`] order).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the record is out of
    /// chronological order — cumulative counters cannot run backwards.
    pub fn ingest(&mut self, record: &DailyRecord) -> Result<Vec<f64>, CoreError> {
        if let Some(last) = self.last_day {
            if record.day <= last {
                return Err(CoreError::InvalidConfig(format!(
                    "record for {} is not after the last ingested day {last}",
                    record.day
                )));
            }
        }
        self.last_day = Some(record.day);
        // Firmware updates in the field are tracked as they appear.
        if record.firmware != self.firmware {
            self.firmware = record.firmware.clone();
        }
        for (slot, ev) in self.w_cum.iter_mut().zip(MODEL_W_EVENTS) {
            *slot += u64::from(record.w(ev));
        }
        for (slot, code) in self.b_cum.iter_mut().zip(BsodCode::ALL) {
            *slot += u64::from(record.b(code));
        }

        let mut row = Vec::with_capacity(45);
        row.extend(record.smart.as_slice());
        row.push(self.firmware.encoded());
        row.extend(self.w_cum.iter().map(|&v| v as f64));
        row.extend(self.b_cum.iter().map(|&v| v as f64));
        debug_assert_eq!(row.len(), FeatureId::full_row().len());
        Ok(row)
    }

    /// Ingests one record and scores it with a trained flat-feature MFPA
    /// model, returning the failure probability.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for out-of-order records or a
    /// sequence model (CNN_LSTM needs windows, not single rows), and
    /// propagates prediction errors.
    pub fn score(
        &mut self,
        record: &DailyRecord,
        trained: &TrainedMfpa,
    ) -> Result<f64, CoreError> {
        if trained.uses_sequence() {
            return Err(CoreError::InvalidConfig(
                "DriveMonitor scores flat models; sequence models need windowed input".into(),
            ));
        }
        let full = self.ingest(record)?;
        let selected: Vec<f64> =
            trained.features().iter().map(|f| full[f.full_index()]).collect();
        let x = Matrix::from_rows(std::slice::from_ref(&selected))?;
        Ok(trained.predict_matrix(&x)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::{SmartValues, Vendor, WindowsEventId};

    fn record(day: i64, w161: u32) -> DailyRecord {
        let mut w = [0u32; 9];
        w[WindowsEventId::W161.index()] = w161;
        DailyRecord {
            day: DayStamp::new(day),
            smart: SmartValues::default(),
            firmware: FirmwareVersion::new(Vendor::I, 1),
            w_counts: w,
            b_counts: [0; 23],
        }
    }

    fn monitor() -> DriveMonitor {
        DriveMonitor::new(SerialNumber::new(Vendor::I, 1), FirmwareVersion::new(Vendor::I, 1))
    }

    #[test]
    fn accumulates_event_counters() {
        let mut m = monitor();
        let w161_col = FeatureId::WinEventCum(WindowsEventId::W161).full_index();
        let r1 = m.ingest(&record(0, 2)).unwrap();
        let r2 = m.ingest(&record(3, 1)).unwrap();
        assert_eq!(r1[w161_col], 2.0);
        assert_eq!(r2[w161_col], 3.0);
        assert_eq!(m.last_day(), Some(DayStamp::new(3)));
    }

    #[test]
    fn rejects_out_of_order_records() {
        let mut m = monitor();
        m.ingest(&record(5, 0)).unwrap();
        assert!(matches!(m.ingest(&record(5, 0)), Err(CoreError::InvalidConfig(_))));
        assert!(matches!(m.ingest(&record(4, 0)), Err(CoreError::InvalidConfig(_))));
    }

    #[test]
    fn tracks_firmware_updates() {
        let mut m = monitor();
        let mut rec = record(0, 0);
        rec.firmware = FirmwareVersion::new(Vendor::I, 3);
        let row = m.ingest(&rec).unwrap();
        assert_eq!(row[FeatureId::Firmware.full_index()], 3.0);
    }

    #[test]
    fn scores_against_a_trained_pipeline() {
        use crate::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
        use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

        let fleet = SimulatedFleet::generate(
            &FleetConfig::tiny(21).with_population_fraction(0.001),
        );
        let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
        let prepared = mfpa.prepare(&fleet).expect("prepare");
        let all: Vec<usize> = (0..prepared.n_rows()).collect();
        let trained = mfpa.train_rows(&prepared, &all).expect("train");

        // Replay a healthy drive through the monitor: scores stay low.
        let healthy = fleet.drives().iter().find(|d| d.truth().is_none()).expect("healthy");
        let mut m = DriveMonitor::new(healthy.serial(), healthy.firmware().clone());
        let mut max_p: f64 = 0.0;
        for rec in healthy.history().records() {
            max_p = max_p.max(m.score(rec, &trained).expect("score"));
        }
        assert!(max_p < 0.9, "healthy drive peaked at {max_p}");

        // Replay a loud faulty drive: the final score should be higher
        // than the healthy drive's peak.
        let faulty = fleet
            .drives()
            .iter()
            .filter(|d| d.truth().is_some())
            .max_by_key(|d| d.history().records().iter().map(|r| r.event_total()).sum::<u32>())
            .expect("faulty");
        let mut m = DriveMonitor::new(faulty.serial(), faulty.firmware().clone());
        let mut last_p = 0.0;
        for rec in faulty.history().records() {
            last_p = m.score(rec, &trained).expect("score");
        }
        assert!(last_p > max_p, "faulty final {last_p} vs healthy peak {max_p}");
    }
}
