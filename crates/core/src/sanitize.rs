//! Telemetry sanitization: the defensive stage between the raw collector
//! stream and the pipeline.
//!
//! Consumer telemetry arrives duplicated, reordered, clock-skewed and
//! value-corrupted (`mfpa_fleetsim::faults` models the classes we
//! defend against). This module repairs what is repairable and
//! quarantines what is not, with per-cause accounting:
//!
//! | Corruption | Action |
//! |---|---|
//! | Sentinel SMART page (all-ones / zeroed page) | quarantine record |
//! | Out-of-range value (negative, over ceiling) | quarantine record |
//! | Record later than the reorder window | quarantine record |
//! | Out-of-order within the window | re-sequence (stable sort by day) |
//! | Exact / conflicting duplicate day | collapse, last record wins |
//! | Missing attribute (NaN) | carry last valid value forward |
//! | Cumulative counter rollover | base-offset monotonicity repair |
//!
//! [`sanitize`] is **idempotent**: its output is strictly day-ascending,
//! NaN-free, sentinel-free and cumulative-monotone, so a second pass
//! keeps every record and repairs nothing. On an uncorrupted stream it
//! is the identity, which is what lets the pipeline run it
//! unconditionally without perturbing clean-data results.

use mfpa_telemetry::{DailyRecord, DriveHistory, DriveModel, SerialNumber, SmartAttr};
use serde::{Deserialize, Serialize};

/// Why a record was quarantined (or rejected by the online monitor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineCause {
    /// The SMART page read as a sentinel (all-ones or zeroed page).
    SentinelReset,
    /// A value fell outside the plausible range.
    RangeViolation,
    /// The record arrived too far behind the newest accepted day.
    LateArrival,
    /// Attributes were missing and no earlier value existed to carry
    /// forward.
    MissingValues,
}

impl std::fmt::Display for QuarantineCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QuarantineCause::SentinelReset => "sentinel SMART page",
            QuarantineCause::RangeViolation => "out-of-range value",
            QuarantineCause::LateArrival => "arrived beyond the reorder window",
            QuarantineCause::MissingValues => "missing attributes with no history",
        };
        f.write_str(s)
    }
}

/// Sanitization policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// How many days behind the newest accepted stamp a record may
    /// arrive and still be re-sequenced; older stragglers are
    /// quarantined as [`QuarantineCause::LateArrival`].
    pub reorder_window: i64,
    /// Values at or above this are sentinel reads (`0xFFFF_FFFF` ≈
    /// 4.29e9 and `0xFFFF_FFFF_FFFF_FFFF` both clear it; no plausible
    /// consumer-drive counter does).
    pub sentinel_ceiling: f64,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            reorder_window: 14,
            sentinel_ceiling: 4.0e9,
        }
    }
}

/// Per-cause counters for one sanitization pass (or one monitor's
/// lifetime). Merged across drives by the pipeline and surfaced through
/// `Prepared` and the stage timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Records consumed.
    pub input_records: usize,
    /// Records surviving into the sanitized history.
    pub kept_records: usize,
    /// Quarantined: sentinel SMART pages.
    pub quarantined_sentinel: usize,
    /// Quarantined: out-of-range values.
    pub quarantined_range: usize,
    /// Quarantined: arrived beyond the reorder window.
    pub quarantined_late: usize,
    /// Quarantined: missing values with nothing to impute from.
    pub quarantined_missing: usize,
    /// Duplicated-day records collapsed (last record wins).
    pub duplicates_collapsed: usize,
    /// Records accepted out of order and re-sequenced.
    pub reordered: usize,
    /// Base-offset repairs applied to cumulative counters.
    pub rollovers_repaired: usize,
    /// Individual NaN attribute values filled by carry-forward.
    pub values_imputed: usize,
}

impl SanitizeReport {
    /// Total quarantined records, across causes.
    pub fn total_quarantined(&self) -> usize {
        self.quarantined_sentinel
            + self.quarantined_range
            + self.quarantined_late
            + self.quarantined_missing
    }

    /// Total repair actions (re-sequencing, collapsing, imputation,
    /// rollover offsets).
    pub fn total_repaired(&self) -> usize {
        self.duplicates_collapsed + self.reordered + self.rollovers_repaired + self.values_imputed
    }

    /// Whether the pass found nothing to repair or quarantine — i.e. the
    /// input was already sanitized (the idempotence invariant).
    pub fn is_clean(&self) -> bool {
        self.total_quarantined() == 0 && self.total_repaired() == 0
    }

    /// Adds another pass's counters into this accumulator.
    pub fn merge(&mut self, other: &SanitizeReport) {
        self.input_records += other.input_records;
        self.kept_records += other.kept_records;
        self.quarantined_sentinel += other.quarantined_sentinel;
        self.quarantined_range += other.quarantined_range;
        self.quarantined_late += other.quarantined_late;
        self.quarantined_missing += other.quarantined_missing;
        self.duplicates_collapsed += other.duplicates_collapsed;
        self.reordered += other.reordered;
        self.rollovers_repaired += other.rollovers_repaired;
        self.values_imputed += other.values_imputed;
    }
}

/// Validates one record's SMART page. `None` = acceptable (NaNs are
/// handled later by imputation).
///
/// `reference_capacity` is the drive's established capacity, when one is
/// known: capacity is constant and strictly positive on a real drive, so
/// a record reporting capacity 0 against a positive reference is an
/// all-zeros sentinel page. Without a reference (a stream that never
/// reports a capacity) zero pages are indistinguishable from a blank
/// drive and pass through.
pub(crate) fn page_violation(
    record: &DailyRecord,
    reference_capacity: Option<f64>,
    cfg: &SanitizeConfig,
) -> Option<QuarantineCause> {
    if let Some(reference) = reference_capacity {
        if reference > 0.0 && record.smart.get(SmartAttr::Capacity) == 0.0 {
            return Some(QuarantineCause::SentinelReset);
        }
    }
    for &v in record.smart.as_slice() {
        if v.is_nan() {
            continue;
        }
        if v >= cfg.sentinel_ceiling {
            return Some(QuarantineCause::SentinelReset);
        }
        if !v.is_finite() || v < 0.0 {
            return Some(QuarantineCause::RangeViolation);
        }
    }
    None
}

/// Sanitizes one drive's raw emission stream into a [`DriveHistory`],
/// with per-cause accounting. See the module docs for the repair /
/// quarantine taxonomy.
pub fn sanitize(
    serial: SerialNumber,
    model: DriveModel,
    raw: &[DailyRecord],
    cfg: &SanitizeConfig,
) -> (DriveHistory, SanitizeReport) {
    let mut report = SanitizeReport {
        input_records: raw.len(),
        ..SanitizeReport::default()
    };

    // The drive's established capacity: the largest plausible value the
    // stream ever reports (capacity is constant per drive, so anything
    // below this — in particular 0 — is corruption, not a downgrade).
    let reference_capacity = raw
        .iter()
        .map(|r| r.smart.get(SmartAttr::Capacity))
        .filter(|v| v.is_finite() && *v > 0.0 && *v < cfg.sentinel_ceiling)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        });

    // 1. Page validation + bounded reordering, in emission order.
    let mut kept: Vec<DailyRecord> = Vec::with_capacity(raw.len());
    let mut max_day = i64::MIN;
    for record in raw {
        match page_violation(record, reference_capacity, cfg) {
            Some(QuarantineCause::SentinelReset) => {
                report.quarantined_sentinel += 1;
                continue;
            }
            Some(QuarantineCause::RangeViolation) => {
                report.quarantined_range += 1;
                continue;
            }
            Some(_) | None => {}
        }
        let day = record.day.day();
        if max_day != i64::MIN && day < max_day - cfg.reorder_window {
            report.quarantined_late += 1;
            continue;
        }
        if max_day != i64::MIN && day < max_day {
            report.reordered += 1;
        }
        max_day = max_day.max(day);
        kept.push(record.clone());
    }
    kept.sort_by_key(|r| r.day);

    // 2. Duplicate collapsing: last record of a duplicated day wins (it
    // is the retransmission).
    let mut collapsed: Vec<DailyRecord> = Vec::with_capacity(kept.len());
    for record in kept {
        match collapsed.last() {
            Some(prev) if prev.day == record.day => {
                report.duplicates_collapsed += 1;
                // mfpa-lint: allow(d8, "guarded by the Some(prev) arm of the last() match above")
                *collapsed.last_mut().expect("non-empty") = record;
            }
            _ => collapsed.push(record),
        }
    }

    // 3. NaN policy: carry the last valid value forward; leading NaNs
    // take the first valid later value. A record left with NaNs (the
    // whole column was missing) is quarantined.
    for attr in SmartAttr::ALL {
        let ix = attr.index();
        let mut last_valid: Option<f64> = None;
        let mut pending_from = 0usize;
        for i in 0..collapsed.len() {
            let v = collapsed[i].smart.as_slice()[ix];
            if v.is_nan() {
                if let Some(fill) = last_valid {
                    collapsed[i].smart.set(attr, fill);
                    report.values_imputed += 1;
                }
                continue;
            }
            if last_valid.is_none() {
                // Backfill any leading NaNs from this first valid value.
                for r in collapsed[pending_from..i].iter_mut() {
                    if r.smart.as_slice()[ix].is_nan() {
                        r.smart.set(attr, v);
                        report.values_imputed += 1;
                    }
                }
            }
            last_valid = Some(v);
            pending_from = i + 1;
        }
    }
    let before_nan_filter = collapsed.len();
    collapsed.retain(|r| !r.smart.as_slice().iter().any(|v| v.is_nan()));
    report.quarantined_missing += before_nan_filter - collapsed.len();

    // 4. Rollover-aware monotonicity repair of cumulative counters: a
    // wrapped counter restarts near zero, so when an adjusted value
    // drops below its predecessor the base offset is raised to splice
    // the two segments (the counter holds, then keeps accumulating).
    for attr in SmartAttr::ALL {
        if !attr.is_cumulative() {
            continue;
        }
        let mut offset = 0.0f64;
        let mut prev = f64::NEG_INFINITY;
        for record in &mut collapsed {
            let v = record.smart.get(attr) + offset;
            let v = if v < prev {
                offset += prev - v;
                report.rollovers_repaired += 1;
                prev
            } else {
                v
            };
            if offset > 0.0 {
                record.smart.set(attr, v);
            }
            prev = v;
        }
    }

    report.kept_records = collapsed.len();
    (DriveHistory::new(serial, model, collapsed), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::{DayStamp, FirmwareVersion, SmartValues, Vendor};

    fn rec(day: i64) -> DailyRecord {
        let mut smart = SmartValues::default();
        smart.set(SmartAttr::Capacity, 512.0);
        smart.set(SmartAttr::PowerOnHours, 24.0 * day as f64);
        smart.set(SmartAttr::DataUnitsWritten, 100.0 * day as f64);
        smart.set(SmartAttr::CompositeTemperature, 40.0);
        DailyRecord {
            day: DayStamp::new(day),
            smart,
            firmware: FirmwareVersion::new(Vendor::I, 1),
            w_counts: [0; 9],
            b_counts: [0; 23],
        }
    }

    fn run(records: Vec<DailyRecord>) -> (DriveHistory, SanitizeReport) {
        sanitize(
            SerialNumber::new(Vendor::I, 1),
            DriveModel::ALL[0],
            &records,
            &SanitizeConfig::default(),
        )
    }

    #[test]
    fn clean_stream_is_identity() {
        let clean: Vec<DailyRecord> = (0..40).map(rec).collect();
        let (h, report) = run(clean.clone());
        assert_eq!(h.records(), clean.as_slice());
        assert!(report.is_clean());
        assert_eq!(report.kept_records, 40);
    }

    #[test]
    fn sentinel_pages_are_quarantined() {
        let mut records: Vec<DailyRecord> = (0..10).map(rec).collect();
        for attr in SmartAttr::ALL {
            records[3].smart.set(attr, u64::MAX as f64);
            records[5].smart.set(attr, 0.0);
        }
        let (h, report) = run(records);
        assert_eq!(report.quarantined_sentinel, 2);
        assert_eq!(h.len(), 8);
        assert!(h.record_on(DayStamp::new(3)).is_none());
        assert!(h.record_on(DayStamp::new(5)).is_none());
    }

    #[test]
    fn duplicates_collapse_keeping_last() {
        let mut records: Vec<DailyRecord> = (0..6).map(rec).collect();
        let mut retransmit = rec(3);
        retransmit.smart.set(SmartAttr::CompositeTemperature, 55.0);
        records.insert(4, retransmit);
        let (h, report) = run(records);
        assert_eq!(report.duplicates_collapsed, 1);
        assert_eq!(
            h.record_on(DayStamp::new(3))
                .unwrap()
                .smart
                .get(SmartAttr::CompositeTemperature),
            55.0
        );
    }

    #[test]
    fn bounded_reordering_and_late_quarantine() {
        // Days emitted as 0,1,5,3 (in window) and then 40,20 (20 is 20
        // days behind → quarantined).
        let records: Vec<DailyRecord> = [0, 1, 5, 3, 40, 20].into_iter().map(rec).collect();
        let (h, report) = run(records);
        assert_eq!(report.reordered, 1);
        assert_eq!(report.quarantined_late, 1);
        assert_eq!(
            h.observed_days(),
            vec![
                DayStamp::new(0),
                DayStamp::new(1),
                DayStamp::new(3),
                DayStamp::new(5),
                DayStamp::new(40)
            ]
        );
    }

    #[test]
    fn nan_carry_forward_and_backfill() {
        let mut records: Vec<DailyRecord> = (0..5).map(rec).collect();
        records[0]
            .smart
            .set(SmartAttr::CompositeTemperature, f64::NAN); // leading → backfill
        records[3]
            .smart
            .set(SmartAttr::CompositeTemperature, f64::NAN); // carry forward
        let (h, report) = run(records);
        assert_eq!(report.values_imputed, 2);
        assert_eq!(
            h.records()[0].smart.get(SmartAttr::CompositeTemperature),
            40.0
        );
        assert_eq!(
            h.records()[3].smart.get(SmartAttr::CompositeTemperature),
            40.0
        );
        assert_eq!(report.quarantined_missing, 0);
    }

    #[test]
    fn all_nan_column_quarantines_records() {
        let mut records: Vec<DailyRecord> = (0..3).map(rec).collect();
        for r in &mut records {
            r.smart.set(SmartAttr::MediaErrors, f64::NAN);
        }
        let (h, report) = run(records);
        assert!(h.is_empty());
        assert_eq!(report.quarantined_missing, 3);
    }

    #[test]
    fn rollover_repair_restores_monotonicity() {
        let mut records: Vec<DailyRecord> = (0..20).map(rec).collect();
        // Counter wraps after day 9: readings restart near zero.
        for r in records.iter_mut().skip(10) {
            let poh = r.smart.get(SmartAttr::PowerOnHours);
            r.smart.set(SmartAttr::PowerOnHours, poh - 240.0);
        }
        let (h, report) = run(records);
        assert!(report.rollovers_repaired > 0);
        let poh: Vec<f64> = h
            .records()
            .iter()
            .map(|r| r.smart.get(SmartAttr::PowerOnHours))
            .collect();
        assert!(
            poh.windows(2).all(|w| w[1] >= w[0]),
            "repaired column must be non-decreasing: {poh:?}"
        );
        // The spliced segment keeps accumulating at the clean rate.
        assert_eq!(poh[19] - poh[10], 24.0 * 9.0);
    }

    #[test]
    fn sanitize_is_idempotent() {
        let mut records: Vec<DailyRecord> = (0..30).map(rec).collect();
        records[4].smart.set(SmartAttr::MediaErrors, f64::NAN);
        records.swap(10, 11);
        records.push(rec(29));
        for r in records.iter_mut().skip(20) {
            let w = r.smart.get(SmartAttr::DataUnitsWritten);
            r.smart.set(SmartAttr::DataUnitsWritten, w - 1900.0);
        }
        let (h1, r1) = run(records);
        assert!(!r1.is_clean());
        let (h2, r2) = run(h1.records().to_vec());
        assert!(r2.is_clean(), "second pass must be a no-op: {r2:?}");
        assert_eq!(h1, h2);
    }
}
