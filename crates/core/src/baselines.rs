//! Simplified reimplementations of the prior-work comparators (Fig 18).
//!
//! The paper compares MFPA against four state-of-the-art SSD failure
//! predictors \[19\]–\[22\] plus the vendor threshold detector. The originals
//! target data-centre telemetry; per DESIGN.md we reimplement their
//! *modelling choices* over the features they actually use, so the
//! comparison isolates what the paper claims matters: the
//! multidimensional CSS features.

use mfpa_telemetry::SmartAttr;
use serde::{Deserialize, Serialize};

use crate::algorithms::Algorithm;
use crate::features::{FeatureGroup, FeatureId};
use crate::pipeline::MfpaConfig;

/// One Fig 18 comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Baseline {
    /// The vendor SMART-threshold detector (§II floor).
    VendorThreshold,
    /// \[19\] Alter et al., SC'19: models built on *error logs only* —
    /// random forest over the W/B event counters.
    ErrorLogRf,
    /// \[20\] Zhang et al., TPDS'20: minority-disk prediction with
    /// transfer-style Bayes over SMART.
    TransferBayes,
    /// \[21\] Chakraborttii et al., SoCC'20: interpretable (linear) model
    /// over SMART.
    InterpretableLinear,
    /// \[22\] Pinciroli et al., TDSC'21: lifespan-aware boosted trees over
    /// SMART (power-on hours as the age feature).
    LifespanGbdt,
    /// SFWB-based MFPA itself (the paper's approach).
    Mfpa,
}

impl Baseline {
    /// All comparators, MFPA last.
    pub const ALL: [Baseline; 6] = [
        Baseline::VendorThreshold,
        Baseline::ErrorLogRf,
        Baseline::TransferBayes,
        Baseline::InterpretableLinear,
        Baseline::LifespanGbdt,
        Baseline::Mfpa,
    ];

    /// Display name with the paper's citation tag.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::VendorThreshold => "Vendor threshold",
            Baseline::ErrorLogRf => "ErrorLog-RF [19]",
            Baseline::TransferBayes => "Transfer-Bayes [20]",
            Baseline::InterpretableLinear => "Interpretable-Linear [21]",
            Baseline::LifespanGbdt => "Lifespan-GBDT [22]",
            Baseline::Mfpa => "MFPA (SFWB+RF)",
        }
    }

    /// The pipeline configuration realising this comparator.
    pub fn config(self, seed: u64) -> MfpaConfig {
        match self {
            Baseline::VendorThreshold => {
                MfpaConfig::new(FeatureGroup::S, Algorithm::VendorThreshold).with_seed(seed)
            }
            Baseline::ErrorLogRf => {
                // W + B counters only: the union of the two event
                // dimensions, no SMART, no firmware.
                let mut cols = FeatureGroup::W.features();
                cols.extend(FeatureGroup::B.features());
                MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest)
                    .with_custom_columns(cols)
                    .with_seed(seed)
            }
            Baseline::TransferBayes => {
                MfpaConfig::new(FeatureGroup::S, Algorithm::Bayes).with_seed(seed)
            }
            Baseline::InterpretableLinear => {
                MfpaConfig::new(FeatureGroup::S, Algorithm::Logistic).with_seed(seed)
            }
            Baseline::LifespanGbdt => {
                // SMART with the age/workload counters emphasised: the
                // model sees SMART including S_12 power-on hours.
                let cols: Vec<FeatureId> = FeatureGroup::S.features();
                debug_assert!(cols.contains(&FeatureId::Smart(SmartAttr::PowerOnHours)));
                MfpaConfig::new(FeatureGroup::S, Algorithm::Gbdt)
                    .with_custom_columns(cols)
                    .with_seed(seed)
            }
            Baseline::Mfpa => {
                MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest).with_seed(seed)
            }
        }
    }
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Baseline::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn error_log_baseline_sees_no_smart() {
        let cfg = Baseline::ErrorLogRf.config(1);
        let cols = cfg.selected_features();
        assert_eq!(cols.len(), 28); // 5 W + 23 B
        assert!(cols.iter().all(|c| !matches!(c, FeatureId::Smart(_))));
    }

    #[test]
    fn smart_baselines_see_smart_only() {
        for b in [
            Baseline::TransferBayes,
            Baseline::InterpretableLinear,
            Baseline::LifespanGbdt,
        ] {
            let cols = b.config(0).selected_features();
            assert!(cols.iter().all(|c| matches!(c, FeatureId::Smart(_))), "{b}");
        }
    }

    #[test]
    fn mfpa_uses_full_sfwb() {
        let cfg = Baseline::Mfpa.config(0);
        assert_eq!(cfg.selected_features().len(), 45);
        assert_eq!(cfg.algorithm, Algorithm::RandomForest);
    }
}
