//! Feature identities and the Table V feature groups.
//!
//! The full multidimensional row has 45 columns: 16 SMART attributes,
//! the label-encoded firmware version, 5 cumulative Windows-event
//! counters and 23 cumulative BSOD counters. Feature groups select
//! column subsets; group `S` is the paper's baseline.

use std::fmt;

use mfpa_telemetry::{BsodCode, SmartAttr, WindowsEventId};
use serde::{Deserialize, Serialize};

/// The five Windows events used as model features (Table V counts 5 of
/// the 9 tracked events; §IV(2.2) flags W_11, W_49, W_51 and W_161 as
/// important, and W_52 is the OS surfacing the drive's own prediction).
pub const MODEL_W_EVENTS: [WindowsEventId; 5] = [
    WindowsEventId::W11,
    WindowsEventId::W49,
    WindowsEventId::W51,
    WindowsEventId::W52,
    WindowsEventId::W161,
];

/// One column of the multidimensional feature row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureId {
    /// A SMART attribute value.
    Smart(SmartAttr),
    /// The label-encoded firmware version (release sequence).
    Firmware,
    /// Cumulative count of a Windows event.
    WinEventCum(WindowsEventId),
    /// Cumulative count of a BSOD stop code.
    BsodCum(BsodCode),
}

impl FeatureId {
    /// The full 45-column feature row, in canonical order
    /// (S_1…S_16, F, W×5, B×23).
    pub fn full_row() -> Vec<FeatureId> {
        let mut out = Vec::with_capacity(45);
        out.extend(SmartAttr::ALL.iter().map(|&a| FeatureId::Smart(a)));
        out.push(FeatureId::Firmware);
        out.extend(MODEL_W_EVENTS.iter().map(|&w| FeatureId::WinEventCum(w)));
        out.extend(BsodCode::ALL.iter().map(|&b| FeatureId::BsodCum(b)));
        out
    }

    /// Index of this feature within [`FeatureId::full_row`].
    pub fn full_index(&self) -> usize {
        match self {
            FeatureId::Smart(a) => a.index(),
            FeatureId::Firmware => 16,
            FeatureId::WinEventCum(w) => {
                17 + MODEL_W_EVENTS
                    .iter()
                    .position(|m| m == w)
                    // mfpa-lint: allow(d8, "WinEventCum is only constructed from MODEL_W_EVENTS members")
                    .expect("event is one of the 5 model events")
            }
            FeatureId::BsodCum(b) => 22 + b.index(),
        }
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureId::Smart(a) => write!(f, "{a}"),
            FeatureId::Firmware => f.write_str("F"),
            FeatureId::WinEventCum(w) => write!(f, "{w}_cum"),
            FeatureId::BsodCum(b) => write!(f, "{b}_cum"),
        }
    }
}

/// A Table V feature group.
///
/// # Example
///
/// ```
/// use mfpa_core::FeatureGroup;
///
/// assert_eq!(FeatureGroup::Sfwb.features().len(), 45);
/// assert_eq!(FeatureGroup::S.features().len(), 16);
/// assert_eq!(FeatureGroup::W.features().len(), 5);
/// assert_eq!(FeatureGroup::B.features().len(), 23);
/// assert_eq!(FeatureGroup::Sfwb.name(), "SFWB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureGroup {
    /// SMART + Firmware + WindowsEvent + BSOD (the paper's winner).
    Sfwb,
    /// SMART + Firmware + WindowsEvent.
    Sfw,
    /// SMART + Firmware + BSOD.
    Sfb,
    /// SMART + Firmware.
    Sf,
    /// SMART only (the traditional baseline).
    S,
    /// WindowsEvent only.
    W,
    /// BSOD only.
    B,
}

impl FeatureGroup {
    /// All seven groups in Table V order.
    pub const ALL: [FeatureGroup; 7] = [
        FeatureGroup::Sfwb,
        FeatureGroup::Sfw,
        FeatureGroup::Sfb,
        FeatureGroup::Sf,
        FeatureGroup::S,
        FeatureGroup::W,
        FeatureGroup::B,
    ];

    /// The group's Table V name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureGroup::Sfwb => "SFWB",
            FeatureGroup::Sfw => "SFW",
            FeatureGroup::Sfb => "SFB",
            FeatureGroup::Sf => "SF",
            FeatureGroup::S => "S",
            FeatureGroup::W => "W",
            FeatureGroup::B => "B",
        }
    }

    /// Whether the group includes the SMART dimension.
    pub fn has_smart(self) -> bool {
        !matches!(self, FeatureGroup::W | FeatureGroup::B)
    }

    /// Whether the group includes the firmware dimension.
    pub fn has_firmware(self) -> bool {
        matches!(
            self,
            FeatureGroup::Sfwb | FeatureGroup::Sfw | FeatureGroup::Sfb | FeatureGroup::Sf
        )
    }

    /// Whether the group includes Windows events.
    pub fn has_w(self) -> bool {
        matches!(
            self,
            FeatureGroup::Sfwb | FeatureGroup::Sfw | FeatureGroup::W
        )
    }

    /// Whether the group includes BSOD codes.
    pub fn has_b(self) -> bool {
        matches!(
            self,
            FeatureGroup::Sfwb | FeatureGroup::Sfb | FeatureGroup::B
        )
    }

    /// The group's feature columns, in canonical order.
    pub fn features(self) -> Vec<FeatureId> {
        FeatureId::full_row()
            .into_iter()
            .filter(|f| match f {
                FeatureId::Smart(_) => self.has_smart(),
                FeatureId::Firmware => self.has_firmware(),
                FeatureId::WinEventCum(_) => self.has_w(),
                FeatureId::BsodCum(_) => self.has_b(),
            })
            .collect()
    }

    /// Column indices of this group within the full 45-column row.
    pub fn full_indices(self) -> Vec<usize> {
        self.features().iter().map(FeatureId::full_index).collect()
    }
}

impl fmt::Display for FeatureGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_row_has_45_unique_columns() {
        let row = FeatureId::full_row();
        assert_eq!(row.len(), 45);
        for (i, f) in row.iter().enumerate() {
            assert_eq!(f.full_index(), i);
        }
        let mut names: Vec<String> = row.iter().map(|f| f.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 45);
    }

    #[test]
    fn table_v_feature_counts() {
        // Table V: SFWB = 16 + 1 + 5 + 23.
        let counts: Vec<usize> = FeatureGroup::ALL
            .iter()
            .map(|g| g.features().len())
            .collect();
        assert_eq!(counts, vec![45, 22, 40, 17, 16, 5, 23]);
    }

    #[test]
    fn group_membership_flags() {
        assert!(FeatureGroup::Sfwb.has_smart() && FeatureGroup::Sfwb.has_b());
        assert!(!FeatureGroup::Sfw.has_b());
        assert!(!FeatureGroup::S.has_firmware());
        assert!(!FeatureGroup::W.has_smart());
        assert!(FeatureGroup::B.has_b() && !FeatureGroup::B.has_w());
    }

    #[test]
    fn indices_are_sorted_subsets() {
        for g in FeatureGroup::ALL {
            let ix = g.full_indices();
            assert!(ix.windows(2).all(|w| w[0] < w[1]));
            assert!(ix.iter().all(|&i| i < 45));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(FeatureId::Firmware.to_string(), "F");
        assert_eq!(
            FeatureId::WinEventCum(WindowsEventId::W161).to_string(),
            "W_161_cum"
        );
        assert_eq!(FeatureId::Smart(SmartAttr::MediaErrors).to_string(), "S_14");
        assert_eq!(FeatureGroup::Sfb.to_string(), "SFB");
    }
}
