//! Evaluation reports: the metric sets and stage timings every
//! experiment binary prints.

use std::fmt;

use mfpa_ml::metrics::ConfusionMatrix;
use serde::{Deserialize, Serialize};

/// A confusion matrix plus ranking quality at one evaluation granularity
/// (per-sample or per-drive).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricSet {
    /// Confusion matrix at the decision threshold.
    pub cm: ConfusionMatrix,
    /// Area under the ROC curve (threshold-free).
    pub auc: f64,
}

impl MetricSet {
    /// True positive rate.
    pub fn tpr(&self) -> f64 {
        self.cm.tpr()
    }

    /// False positive rate.
    pub fn fpr(&self) -> f64 {
        self.cm.fpr()
    }

    /// Accuracy.
    pub fn acc(&self) -> f64 {
        self.cm.accuracy()
    }

    /// Positive detection rate (the paper's PDR).
    pub fn pdr(&self) -> f64 {
        self.cm.pdr()
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TPR={:6.2}% FPR={:6.2}% ACC={:6.2}% PDR={:6.2}% AUC={:.4}",
            self.tpr() * 100.0,
            self.fpr() * 100.0,
            self.acc() * 100.0,
            self.pdr() * 100.0,
            self.auc
        )
    }
}

/// Wall-clock and volume accounting per pipeline stage (Fig 20).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Worker threads the parallel stages resolved to (0 when the run
    /// never reached them). Stage seconds for parallel stages are summed
    /// per-worker work, so they can exceed wall-clock by up to this
    /// factor.
    pub n_threads: usize,
    /// Raw telemetry records consumed.
    pub n_raw_records: usize,
    /// Seconds spent sanitizing raw telemetry (zero when disabled).
    pub sanitize_secs: f64,
    /// Records the sanitization stage quarantined, by any cause.
    pub n_quarantined: usize,
    /// In-place repairs (rollover splices + imputed values + collapsed
    /// duplicates + reordered arrivals) the sanitization stage applied.
    pub n_repaired: usize,
    /// Seconds spent in preprocessing (gap handling + feature rows).
    pub preprocess_secs: f64,
    /// Seconds spent aligning tickets (θ labelling).
    pub labeling_secs: f64,
    /// Seconds spent assembling sample frames.
    pub sampling_secs: f64,
    /// Training rows after under-sampling.
    pub n_train_rows: usize,
    /// Seconds spent fitting the model.
    pub train_secs: f64,
    /// Test rows scored.
    pub n_test_rows: usize,
    /// Seconds spent predicting the test rows.
    pub predict_secs: f64,
    /// Approximate bytes held by the assembled sample frames.
    pub frame_bytes: usize,
}

impl StageTimings {
    /// Mean prediction latency per row, in microseconds.
    pub fn predict_micros_per_row(&self) -> f64 {
        if self.n_test_rows == 0 {
            0.0
        } else {
            self.predict_secs * 1e6 / self.n_test_rows as f64
        }
    }
}

/// The result of one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Human-readable experiment label.
    pub name: String,
    /// Per-sample (drive-day) metrics.
    pub sample: MetricSet,
    /// Per-drive metrics (a drive is flagged if any of its test rows
    /// crosses the threshold).
    pub drive: MetricSet,
    /// Test drives evaluated.
    pub n_test_drives: usize,
    /// Faulty drives among them.
    pub n_failed_test_drives: usize,
    /// Stage accounting.
    pub timings: StageTimings,
}

impl fmt::Display for EvalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.name)?;
        writeln!(f, "  drive : {}", self.drive)?;
        writeln!(f, "  sample: {}", self.sample)?;
        write!(
            f,
            "  test drives: {} ({} faulty) | rows: {} train / {} test",
            self.n_test_drives,
            self.n_failed_test_drives,
            self.timings.n_train_rows,
            self.timings.n_test_rows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(tp: u64, fp: u64, tn: u64, fn_: u64, auc: f64) -> MetricSet {
        MetricSet {
            cm: ConfusionMatrix { tp, fp, tn, fn_ },
            auc,
        }
    }

    #[test]
    fn metric_accessors_delegate() {
        let m = metric(9, 1, 99, 1, 0.99);
        assert!((m.tpr() - 0.9).abs() < 1e-12);
        assert!((m.fpr() - 0.01).abs() < 1e-12);
        assert!((m.pdr() - 10.0 / 110.0).abs() < 1e-12);
        assert!(m.acc() > 0.98);
    }

    #[test]
    fn display_formats_percentages() {
        let m = metric(98, 1, 199, 2, 0.998);
        let s = m.to_string();
        assert!(s.contains("TPR= 98.00%"), "{s}");
        assert!(s.contains("AUC=0.9980"), "{s}");
    }

    #[test]
    fn timings_micros_per_row() {
        let t = StageTimings {
            n_test_rows: 1000,
            predict_secs: 0.01,
            ..Default::default()
        };
        assert!((t.predict_micros_per_row() - 10.0).abs() < 1e-9);
        assert_eq!(StageTimings::default().predict_micros_per_row(), 0.0);
    }

    #[test]
    fn report_display_contains_counts() {
        let r = EvalReport {
            name: "demo".into(),
            sample: metric(1, 0, 1, 0, 1.0),
            drive: metric(1, 0, 1, 0, 1.0),
            n_test_drives: 2,
            n_failed_test_drives: 1,
            timings: StageTimings::default(),
        };
        let s = r.to_string();
        assert!(s.contains("[demo]"));
        assert!(s.contains("test drives: 2 (1 faulty)"));
    }
}
