//! Error type for the MFPA pipeline.

use std::error::Error;
use std::fmt;

use mfpa_dataset::DatasetError;
use mfpa_ml::MlError;

/// Errors returned by pipeline construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Preprocessing left no usable drive series.
    NoUsableDrives,
    /// The training window contains no positive (or no negative) samples;
    /// carries a description of what was missing.
    DegenerateTrainingSet(String),
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// An underlying dataset operation failed.
    Dataset(String),
    /// An underlying model operation failed.
    Model(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoUsableDrives => {
                f.write_str("preprocessing left no usable drive series")
            }
            CoreError::DegenerateTrainingSet(what) => {
                write!(f, "degenerate training set: {what}")
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Dataset(msg) => write!(f, "dataset error: {msg}"),
            CoreError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl Error for CoreError {}

impl From<DatasetError> for CoreError {
    fn from(e: DatasetError) -> Self {
        CoreError::Dataset(e.to_string())
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CoreError::NoUsableDrives.to_string().contains("no usable"));
        let e: CoreError = DatasetError::Empty.into();
        assert!(matches!(e, CoreError::Dataset(_)));
        let e: CoreError = MlError::NotFitted.into();
        assert!(matches!(e, CoreError::Model(_)));
        assert!(CoreError::DegenerateTrainingSet("no positives".into())
            .to_string()
            .contains("no positives"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
