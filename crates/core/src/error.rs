//! Error type for the MFPA pipeline.

use std::error::Error;
use std::fmt;

use mfpa_dataset::DatasetError;
use mfpa_ml::MlError;
use mfpa_telemetry::{DayStamp, SerialNumber};

use crate::sanitize::QuarantineCause;

/// Errors returned by pipeline construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Preprocessing left no usable drive series.
    NoUsableDrives,
    /// The training window contains no positive (or no negative) samples;
    /// carries a description of what was missing.
    DegenerateTrainingSet(String),
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// A telemetry record arrived before the monitor's newest ingested
    /// day — cumulative counters cannot run backwards online.
    OutOfOrderRecord {
        /// The drive whose stream regressed.
        serial: SerialNumber,
        /// The offending record's day.
        day: DayStamp,
        /// The newest day already ingested.
        last: DayStamp,
    },
    /// A telemetry record failed online validation and was quarantined.
    CorruptRecord {
        /// The drive whose record was quarantined.
        serial: SerialNumber,
        /// The offending record's day.
        day: DayStamp,
        /// What was wrong with it.
        cause: QuarantineCause,
    },
    /// A drive is quarantined by the fleet monitor: its records
    /// repeatedly failed sanitization and deliveries are being dropped
    /// until the readmission tick (or forever, when the drive exhausted
    /// its readmission strikes).
    QuarantinedDrive {
        /// The quarantined drive.
        serial: SerialNumber,
        /// The shard holding the drive's monitor state.
        shard: usize,
        /// First tick at which a readmission probe will be accepted;
        /// `None` means the quarantine is permanent.
        until_tick: Option<u64>,
    },
    /// A checkpoint file failed validation (bad magic, truncation,
    /// checksum mismatch, or an incompatible shard layout) and was
    /// refused — corrupt state must never be loaded.
    CheckpointCorrupt {
        /// The offending checkpoint file.
        path: String,
        /// What failed to validate.
        detail: String,
    },
    /// A batch routed more records to one shard than its bounded queue
    /// admits, under the strict (non-shedding) overflow policy.
    ShardOverflow {
        /// The overflowing shard.
        shard: usize,
        /// Records beyond the shard's queue capacity.
        dropped: usize,
    },
    /// A model shape was used where it cannot work (e.g. a sequence
    /// model handed single rows).
    UnsupportedModel(String),
    /// An underlying dataset operation failed.
    Dataset(String),
    /// An underlying model operation failed.
    Model(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoUsableDrives => {
                f.write_str("preprocessing left no usable drive series")
            }
            CoreError::DegenerateTrainingSet(what) => {
                write!(f, "degenerate training set: {what}")
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::OutOfOrderRecord { serial, day, last } => write!(
                f,
                "out-of-order record for {serial}: day {day} is not after the last ingested day {last}"
            ),
            CoreError::CorruptRecord { serial, day, cause } => {
                write!(f, "corrupt record for {serial} on day {day}: {cause}")
            }
            CoreError::QuarantinedDrive {
                serial,
                shard,
                until_tick,
            } => match until_tick {
                Some(t) => write!(
                    f,
                    "drive {serial} is quarantined on shard {shard} until tick {t}"
                ),
                None => write!(
                    f,
                    "drive {serial} is permanently quarantined on shard {shard}"
                ),
            },
            CoreError::CheckpointCorrupt { path, detail } => {
                write!(f, "checkpoint {path} rejected: {detail}")
            }
            CoreError::ShardOverflow { shard, dropped } => write!(
                f,
                "shard {shard} queue overflow: {dropped} records beyond capacity"
            ),
            CoreError::UnsupportedModel(msg) => write!(f, "unsupported model: {msg}"),
            CoreError::Dataset(msg) => write!(f, "dataset error: {msg}"),
            CoreError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl Error for CoreError {}

impl From<DatasetError> for CoreError {
    fn from(e: DatasetError) -> Self {
        CoreError::Dataset(e.to_string())
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CoreError::NoUsableDrives.to_string().contains("no usable"));
        let e: CoreError = DatasetError::Empty.into();
        assert!(matches!(e, CoreError::Dataset(_)));
        let e: CoreError = MlError::NotFitted.into();
        assert!(matches!(e, CoreError::Model(_)));
        assert!(CoreError::DegenerateTrainingSet("no positives".into())
            .to_string()
            .contains("no positives"));
    }

    #[test]
    fn telemetry_variants_carry_structure() {
        use mfpa_telemetry::Vendor;
        let serial = SerialNumber::new(Vendor::I, 3);
        let e = CoreError::OutOfOrderRecord {
            serial,
            day: DayStamp::new(4),
            last: DayStamp::new(9),
        };
        let msg = e.to_string();
        assert!(msg.contains("out-of-order"), "{msg}");
        assert!(msg.contains('4') && msg.contains('9'), "{msg}");
        let e = CoreError::CorruptRecord {
            serial,
            day: DayStamp::new(2),
            cause: QuarantineCause::SentinelReset,
        };
        assert!(e.to_string().contains("sentinel"), "{e}");
        assert_eq!(
            e,
            CoreError::CorruptRecord {
                serial,
                day: DayStamp::new(2),
                cause: QuarantineCause::SentinelReset,
            }
        );
    }

    #[test]
    fn fleet_monitor_variants_carry_structure() {
        use mfpa_telemetry::Vendor;
        let serial = SerialNumber::new(Vendor::II, 9);
        let e = CoreError::QuarantinedDrive {
            serial,
            shard: 3,
            until_tick: Some(40),
        };
        let msg = e.to_string();
        assert!(msg.contains("shard 3") && msg.contains("tick 40"), "{msg}");
        let e = CoreError::QuarantinedDrive {
            serial,
            shard: 3,
            until_tick: None,
        };
        assert!(e.to_string().contains("permanently"), "{e}");
        let e = CoreError::CheckpointCorrupt {
            path: "ckpt-7.mfpa".into(),
            detail: "checksum mismatch".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("ckpt-7.mfpa") && msg.contains("checksum"),
            "{msg}"
        );
        let e = CoreError::ShardOverflow {
            shard: 1,
            dropped: 17,
        };
        assert!(e.to_string().contains("17"), "{e}");
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
