//! The algorithm registry (§III-C(4)).
//!
//! MFPA is "portable in algorithms": the same features feed Bayes, SVM,
//! Random Forest, GBDT and CNN_LSTM. The vendor SMART-threshold detector
//! is included as the non-learned floor (§II).

use std::fmt;

use mfpa_ml::{
    Classifier, CnnLstm, GaussianNb, Gbdt, LinearSvm, LogisticRegression, RandomForest,
    ThresholdDetector, ThresholdRule,
};
use mfpa_telemetry::SmartAttr;
use serde::{Deserialize, Serialize};

use crate::features::FeatureId;

/// One of the supported model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Gaussian naive Bayes.
    Bayes,
    /// Linear SVM (Pegasos + Platt calibration).
    Svm,
    /// Random Forest — the paper's best performer.
    RandomForest,
    /// Gradient-boosted decision trees.
    Gbdt,
    /// CNN_LSTM over per-drive telemetry windows.
    CnnLstm,
    /// The vendor SMART-threshold detector (non-learned baseline).
    VendorThreshold,
    /// Interpretable logistic regression (the Fig 18 comparator \[21\];
    /// not part of the paper's five-algorithm portfolio).
    Logistic,
}

impl Algorithm {
    /// The five learned algorithms evaluated in Fig 10/14.
    pub const LEARNED: [Algorithm; 5] = [
        Algorithm::Bayes,
        Algorithm::Svm,
        Algorithm::RandomForest,
        Algorithm::Gbdt,
        Algorithm::CnnLstm,
    ];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bayes => "Bayes",
            Algorithm::Svm => "SVM",
            Algorithm::RandomForest => "RF",
            Algorithm::Gbdt => "GBDT",
            Algorithm::CnnLstm => "CNN_LSTM",
            Algorithm::VendorThreshold => "SMART-threshold",
            Algorithm::Logistic => "LogReg",
        }
    }

    /// Whether the model consumes the sequence view instead of flat rows.
    pub fn needs_sequence(self) -> bool {
        matches!(self, Algorithm::CnnLstm)
    }

    /// Builds a model with the suite's default hyperparameters.
    ///
    /// `features` is the column set the model will see (the threshold
    /// detector needs it to locate the SMART attributes its rules read);
    /// `seq_len` only matters for [`Algorithm::CnnLstm`], and `max_bins`
    /// (histogram split-search budget, `0` = exact) only for the tree
    /// ensembles.
    pub fn build(
        self,
        seed: u64,
        seq_len: usize,
        features: &[FeatureId],
        max_bins: usize,
    ) -> Box<dyn Classifier> {
        match self {
            Algorithm::Bayes => Box::new(GaussianNb::new().with_log1p(true)),
            Algorithm::Logistic => Box::new(LogisticRegression::new(1e-4, 200)),
            Algorithm::Svm => Box::new(LinearSvm::new(1e-4, 25).with_seed(seed)),
            Algorithm::RandomForest => Box::new(
                RandomForest::new(120, 12)
                    .with_seed(seed)
                    .with_max_bins(max_bins),
            ),
            Algorithm::Gbdt => Box::new(
                Gbdt::new(150, 0.1, 3)
                    .with_subsample(0.8)
                    .with_seed(seed)
                    .with_max_bins(max_bins),
            ),
            Algorithm::CnnLstm => Box::new(
                CnnLstm::new(seq_len, features.len())
                    .with_epochs(25)
                    .with_seed(seed),
            ),
            Algorithm::VendorThreshold => {
                let find =
                    |attr: SmartAttr| features.iter().position(|f| *f == FeatureId::Smart(attr));
                let mut rules = Vec::new();
                // The classic vendor trip-wires: exhausted spare, tripped
                // critical-warning bit, runaway media errors.
                if let Some(col) = find(SmartAttr::AvailableSpare) {
                    rules.push(ThresholdRule::below(col, 10.0));
                }
                if let Some(col) = find(SmartAttr::CriticalWarning) {
                    rules.push(ThresholdRule::above(col, 0.5));
                }
                if let Some(col) = find(SmartAttr::MediaErrors) {
                    rules.push(ThresholdRule::above(col, 120.0));
                }
                Box::new(
                    ThresholdDetector::new(features.len(), rules)
                        // mfpa-lint: allow(d5, "rule columns are positions in the feature list just built")
                        .expect("rule columns come from the feature list"),
                )
            }
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureGroup;

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Algorithm::LEARNED.iter().map(|a| a.name()).collect();
        names.push(Algorithm::VendorThreshold.name());
        names.push(Algorithm::Logistic.name());
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn logistic_builds_and_is_flat() {
        let feats = FeatureGroup::S.features();
        let m = Algorithm::Logistic.build(0, 5, &feats, 256);
        assert_eq!(m.name(), "LogReg");
        assert!(!Algorithm::Logistic.needs_sequence());
    }

    #[test]
    fn only_cnn_lstm_needs_sequences() {
        assert!(Algorithm::CnnLstm.needs_sequence());
        for a in [
            Algorithm::Bayes,
            Algorithm::Svm,
            Algorithm::RandomForest,
            Algorithm::Gbdt,
        ] {
            assert!(!a.needs_sequence());
        }
    }

    #[test]
    fn builders_produce_models() {
        let feats = FeatureGroup::Sfwb.features();
        for a in Algorithm::LEARNED {
            let m = a.build(1, 5, &feats, 256);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn threshold_detector_finds_smart_columns() {
        let feats = FeatureGroup::S.features();
        let m = Algorithm::VendorThreshold.build(0, 5, &feats, 256);
        assert_eq!(m.name(), "SMART-threshold");
        // Without SMART columns there are no rules, but the build works.
        let wb = FeatureGroup::W.features();
        let _ = Algorithm::VendorThreshold.build(0, 5, &wb, 256);
    }
}
