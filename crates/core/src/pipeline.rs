//! The end-to-end MFPA pipeline: preprocess → label → sample → split →
//! balance → train → evaluate.

use std::collections::BTreeMap;
use std::time::Instant;

use mfpa_dataset::{split, Matrix, RandomUnderSampler};
use mfpa_fleetsim::SimulatedFleet;
use mfpa_ml::metrics::{auc, ConfusionMatrix};
use mfpa_ml::Classifier;
use mfpa_par::{ordered_map, Workers};
use mfpa_telemetry::{SerialNumber, Vendor};
use serde::{Deserialize, Serialize};

use crate::algorithms::Algorithm;
use crate::error::CoreError;
use crate::features::{FeatureGroup, FeatureId};
use crate::labeling::{label_failures, LabelingConfig};
use crate::preprocess::{preprocess, CleanSeries, PreprocessConfig};
use crate::report::{EvalReport, MetricSet, StageTimings};
use crate::sanitize::{sanitize, SanitizeConfig, SanitizeReport};
use crate::windows::{SampleSet, WindowConfig};

/// Train/test segmentation strategy (Fig 8(a)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitStrategy {
    /// Naive random split with the given test fraction.
    Ratio {
        /// Fraction of rows assigned to the test set.
        test_fraction: f64,
    },
    /// The paper's timepoint-based segmentation: the earliest
    /// `train_fraction` of rows (by time) trains, the rest tests.
    TimePoint {
        /// Fraction of rows (time-quantile) in the learning window.
        train_fraction: f64,
    },
}

/// Cross-validation strategy (Fig 8(b)) — consumed by the tuning
/// helpers and the Fig 8 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CvStrategy {
    /// Classic shuffled k-fold.
    KFold(usize),
    /// The paper's chronological 2k-subset scheme.
    TimeSeries(usize),
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MfpaConfig {
    /// Feature group fed to the model (Table V).
    pub feature_group: FeatureGroup,
    /// Explicit column override (feature selection / baselines); takes
    /// precedence over `feature_group` when set.
    pub custom_columns: Option<Vec<FeatureId>>,
    /// Model family.
    pub algorithm: Algorithm,
    /// Telemetry sanitization ahead of preprocessing: `Some` runs the
    /// [`crate::sanitize`] stage over each drive's raw emission stream
    /// (the default — it is the identity on clean telemetry); `None`
    /// trusts the collector's view unchecked (the robustness baseline).
    pub sanitize: Option<SanitizeConfig>,
    /// Gap-handling constants (§III-C(1)).
    pub preprocess: PreprocessConfig,
    /// θ-labelling constants (§III-C(2)).
    pub labeling: LabelingConfig,
    /// Positive-window / lookahead / sequence-length constants.
    pub window: WindowConfig,
    /// Negative:positive under-sampling ratio for training
    /// (`None` trains on the raw imbalance).
    pub undersample_ratio: Option<f64>,
    /// Train/test segmentation.
    pub split: SplitStrategy,
    /// Decision threshold on predicted probability.
    pub threshold: f64,
    /// Restrict the pipeline to one vendor (per-vendor models, Fig 11).
    pub vendor: Option<Vendor>,
    /// Seed for sampling and model training.
    pub seed: u64,
    /// Worker threads for the per-drive sanitize + preprocess stages
    /// (`0` = automatic: `MFPA_THREADS` or the machine's parallelism).
    /// Purely a throughput knob — every report is bit-identical at any
    /// value.
    pub n_threads: usize,
    /// Per-feature bin budget for the tree ensembles' histogram split
    /// search (`0` = the exact re-sorting path).
    pub max_bins: usize,
    /// Compile the fitted ensemble into a flat scoring engine right
    /// after training ([`mfpa_ml::CompiledEnsemble`]). Scores are
    /// bit-identical to the interpreted model; this is purely a serving
    /// throughput knob. Ignored by model families without a compiled
    /// form.
    pub compile: bool,
}

impl MfpaConfig {
    /// Creates the default configuration for a feature group and
    /// algorithm: θ = 7, 14-day positive window, 3:1 under-sampling,
    /// timepoint split at 70%.
    pub fn new(feature_group: FeatureGroup, algorithm: Algorithm) -> Self {
        MfpaConfig {
            feature_group,
            custom_columns: None,
            algorithm,
            sanitize: Some(SanitizeConfig::default()),
            preprocess: PreprocessConfig::default(),
            labeling: LabelingConfig::default(),
            window: WindowConfig::default(),
            undersample_ratio: Some(3.0),
            split: SplitStrategy::TimePoint {
                train_fraction: 0.7,
            },
            threshold: 0.5,
            vendor: None,
            seed: 17,
            n_threads: 0,
            max_bins: 256,
            compile: false,
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Restricts to one vendor.
    pub fn with_vendor(mut self, vendor: Vendor) -> Self {
        self.vendor = Some(vendor);
        self
    }

    /// Sets or disables the sanitization stage.
    pub fn with_sanitize(mut self, sanitize: Option<SanitizeConfig>) -> Self {
        self.sanitize = sanitize;
        self
    }

    /// Sets the worker-thread count (`0` = automatic).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.n_threads = n;
        self
    }

    /// Sets the tree ensembles' histogram bin budget (`0` = exact path).
    pub fn with_max_bins(mut self, n: usize) -> Self {
        self.max_bins = n;
        self
    }

    /// Enables post-fit compilation of tree ensembles for serving.
    pub fn with_compile(mut self, compile: bool) -> Self {
        self.compile = compile;
        self
    }

    /// Sets the θ threshold.
    pub fn with_theta(mut self, theta: i64) -> Self {
        self.labeling.theta = theta.max(0);
        self
    }

    /// Sets the positive-window length (days).
    pub fn with_positive_window(mut self, days: i64) -> Self {
        self.window.positive_window = days.max(1);
        self
    }

    /// Sets the lookahead N (days).
    pub fn with_lookahead(mut self, days: i64) -> Self {
        self.window.lookahead = days.max(0);
        self
    }

    /// Sets or disables the under-sampling ratio.
    pub fn with_undersample_ratio(mut self, ratio: Option<f64>) -> Self {
        self.undersample_ratio = ratio;
        self
    }

    /// Sets the split strategy.
    pub fn with_split(mut self, split: SplitStrategy) -> Self {
        self.split = split;
        self
    }

    /// Sets the decision threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Overrides the model's columns explicitly.
    pub fn with_custom_columns(mut self, columns: Vec<FeatureId>) -> Self {
        self.custom_columns = Some(columns);
        self
    }

    /// The columns the model will see.
    pub fn selected_features(&self) -> Vec<FeatureId> {
        self.custom_columns
            .clone()
            .unwrap_or_else(|| self.feature_group.features())
    }

    /// A human-readable label for reports.
    pub fn label(&self) -> String {
        let vendor = self
            .vendor
            .map(|v| format!(" vendor={v}"))
            .unwrap_or_default();
        let cols = if self.custom_columns.is_some() {
            "custom"
        } else {
            self.feature_group.name()
        };
        format!("{}+{}{}", cols, self.algorithm.name(), vendor)
    }
}

/// Preprocessed, labelled, sampled data — reusable across models and
/// evaluation windows.
#[derive(Debug)]
pub struct Prepared {
    samples: SampleSet,
    failure_days: BTreeMap<SerialNumber, i64>,
    sanitize_report: SanitizeReport,
    n_raw_records: usize,
    n_series: usize,
    sanitize_secs: f64,
    preprocess_secs: f64,
    labeling_secs: f64,
    sampling_secs: f64,
}

impl Prepared {
    /// The assembled sample set (flat + sequence views, full columns).
    pub fn samples(&self) -> &SampleSet {
        &self.samples
    }

    /// θ-identified failure day per ticketed drive.
    pub fn failure_days(&self) -> &BTreeMap<SerialNumber, i64> {
        &self.failure_days
    }

    /// Number of sample rows.
    pub fn n_rows(&self) -> usize {
        self.samples.flat.n_rows()
    }

    /// Number of drive series that survived preprocessing.
    pub fn n_series(&self) -> usize {
        self.n_series
    }

    /// Number of raw telemetry records consumed.
    pub fn n_raw_records(&self) -> usize {
        self.n_raw_records
    }

    /// Fleet-wide sanitization accounting (all zeros when the stage is
    /// disabled or the telemetry is clean).
    pub fn sanitize_report(&self) -> &SanitizeReport {
        &self.sanitize_report
    }

    /// Seconds spent in the sanitization stage.
    pub fn sanitize_secs(&self) -> f64 {
        self.sanitize_secs
    }

    /// Row indices whose collection time lies in `[from, to)`.
    pub fn rows_in_window(&self, from: i64, to: i64) -> Vec<usize> {
        self.samples
            .flat
            .meta()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.time >= from && m.time < to)
            .map(|(ix, _)| ix)
            .collect()
    }
}

/// The MFPA pipeline for one configuration.
#[derive(Debug, Clone)]
pub struct Mfpa {
    config: MfpaConfig,
}

impl Mfpa {
    /// Creates a pipeline.
    pub fn new(config: MfpaConfig) -> Self {
        Mfpa { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &MfpaConfig {
        &self.config
    }

    /// Stage 1–3: preprocess, θ-label, assemble samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoUsableDrives`] if preprocessing leaves
    /// nothing.
    pub fn prepare(&self, fleet: &SimulatedFleet) -> Result<Prepared, CoreError> {
        let selected: Vec<_> = fleet
            .drives()
            .iter()
            .filter(|d| self.config.vendor.is_none_or(|v| d.vendor() == v))
            .collect();
        // Per-drive sanitize + preprocess are independent, so they run on
        // the deterministic parallel layer; results come back in drive
        // order and are merged serially, so every counter and the series
        // list are bit-identical at any worker count. The stage seconds
        // are summed *work* across workers, not wall-clock.
        struct DriveOut {
            series: Option<CleanSeries>,
            n_raw: usize,
            report: Option<SanitizeReport>,
            sanitize_secs: f64,
            preprocess_secs: f64,
        }
        let workers = Workers::from_config(self.config.n_threads);
        let outputs = ordered_map(&selected, workers, |_, drive| {
            let mut out = DriveOut {
                series: None,
                n_raw: 0,
                report: None,
                sanitize_secs: 0.0,
                preprocess_secs: 0.0,
            };
            let sanitized;
            let history = match &self.config.sanitize {
                Some(cfg) => {
                    out.n_raw = drive.raw_records().len();
                    let ts = Instant::now();
                    let (h, report) = sanitize(
                        drive.serial(),
                        drive.history().model(),
                        drive.raw_records(),
                        cfg,
                    );
                    out.sanitize_secs = ts.elapsed().as_secs_f64();
                    out.report = Some(report);
                    sanitized = h;
                    &sanitized
                }
                None => {
                    out.n_raw = drive.history().len();
                    drive.history()
                }
            };
            let tp = Instant::now();
            out.series = preprocess(history, drive.firmware(), &self.config.preprocess);
            out.preprocess_secs = tp.elapsed().as_secs_f64();
            out
        });

        let mut series: Vec<CleanSeries> = Vec::new();
        let mut n_raw_records = 0usize;
        let mut sanitize_report = SanitizeReport::default();
        let mut sanitize_secs = 0.0f64;
        let mut preprocess_secs = 0.0f64;
        for out in outputs {
            n_raw_records += out.n_raw;
            if let Some(report) = &out.report {
                sanitize_report.merge(report);
            }
            sanitize_secs += out.sanitize_secs;
            preprocess_secs += out.preprocess_secs;
            if let Some(s) = out.series {
                series.push(s);
            }
        }
        if series.is_empty() {
            return Err(CoreError::NoUsableDrives);
        }

        let t1 = Instant::now();
        let failure_days = label_failures(&series, fleet.tickets(), &self.config.labeling);
        let labeling_secs = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let samples = crate::windows::build_samples_for(
            &series,
            &failure_days,
            &self.config.window,
            self.config.algorithm.needs_sequence(),
        )?;
        let sampling_secs = t2.elapsed().as_secs_f64();

        Ok(Prepared {
            samples,
            failure_days,
            sanitize_report,
            n_raw_records,
            n_series: series.len(),
            sanitize_secs,
            preprocess_secs,
            labeling_secs,
            sampling_secs,
        })
    }

    /// Trains on the given rows (under-sampling applied internally).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DegenerateTrainingSet`] when the rows contain
    /// a single class.
    pub fn train_rows(
        &self,
        prepared: &Prepared,
        rows: &[usize],
    ) -> Result<TrainedMfpa, CoreError> {
        let features = self.config.selected_features();
        let uses_seq = self.config.algorithm.needs_sequence();
        let frame = if uses_seq {
            &prepared.samples.seq
        } else {
            &prepared.samples.flat
        };

        let labels: Vec<bool> = rows.iter().map(|&i| frame.labels()[i]).collect();
        let n_pos = labels.iter().filter(|&&l| l).count();
        if rows.is_empty() || n_pos == 0 {
            return Err(CoreError::DegenerateTrainingSet(
                "no positive samples in the training window".into(),
            ));
        }
        if n_pos == labels.len() {
            return Err(CoreError::DegenerateTrainingSet(
                "no negative samples in the training window".into(),
            ));
        }

        let kept: Vec<usize> = match self.config.undersample_ratio {
            Some(ratio) => {
                let sampler =
                    RandomUnderSampler::new(ratio, self.config.seed).map_err(CoreError::from)?;
                sampler
                    .sample(&labels)
                    .into_iter()
                    .map(|i| rows[i])
                    .collect()
            }
            None => rows.to_vec(),
        };

        let cols = col_indices(&features, uses_seq, self.config.window.seq_len);
        let sub = frame.select_rows(&kept).select_cols(&cols);
        let y: Vec<bool> = sub.labels().to_vec();

        let mut model = self.config.algorithm.build(
            self.config.seed,
            self.config.window.seq_len,
            &features,
            self.config.max_bins,
        );
        let t0 = Instant::now();
        model.fit(sub.matrix(), &y).map_err(|e| match e {
            mfpa_ml::MlError::SingleClass => {
                CoreError::DegenerateTrainingSet("under-sampling left a single class".into())
            }
            other => CoreError::from(other),
        })?;
        let train_secs = t0.elapsed().as_secs_f64();

        let mut trained = TrainedMfpa {
            model,
            compiled: None,
            features,
            uses_seq,
            seq_len: self.config.window.seq_len,
            threshold: self.config.threshold,
            train_secs,
            n_train_rows: kept.len(),
        };
        if self.config.compile {
            trained.compile();
        }
        Ok(trained)
    }

    /// Runs the whole pipeline: prepare, split, train, evaluate.
    ///
    /// # Errors
    ///
    /// Propagates preparation and training errors.
    pub fn run(&self, fleet: &SimulatedFleet) -> Result<EvalReport, CoreError> {
        let prepared = self.prepare(fleet)?;
        let times = prepared.samples.flat.times();
        let the_split = match self.config.split {
            SplitStrategy::Ratio { test_fraction } => {
                split::ratio_split(times.len(), test_fraction, self.config.seed)?
            }
            SplitStrategy::TimePoint { train_fraction } => {
                split::timepoint_split_fraction(&times, train_fraction)?
            }
        };
        let trained = self.train_rows(&prepared, &the_split.train)?;
        let mut report = trained.evaluate_rows(&prepared, &the_split.test, &self.config.label())?;
        report.timings.n_threads = Workers::from_config(self.config.n_threads).get();
        report.timings.n_raw_records = prepared.n_raw_records;
        report.timings.sanitize_secs = prepared.sanitize_secs;
        report.timings.n_quarantined = prepared.sanitize_report.total_quarantined();
        report.timings.n_repaired = prepared.sanitize_report.total_repaired();
        report.timings.preprocess_secs = prepared.preprocess_secs;
        report.timings.labeling_secs = prepared.labeling_secs;
        report.timings.sampling_secs = prepared.sampling_secs;
        report.timings.frame_bytes =
            prepared.samples.flat.heap_bytes() + prepared.samples.seq.heap_bytes();
        Ok(report)
    }
}

/// A trained model plus everything needed to score new rows.
pub struct TrainedMfpa {
    model: Box<dyn Classifier>,
    /// Flat scoring engine compiled from `model` (tree ensembles only);
    /// when present, batch scoring routes through it. Probabilities are
    /// bit-identical either way.
    compiled: Option<mfpa_ml::CompiledEnsemble>,
    features: Vec<FeatureId>,
    uses_seq: bool,
    seq_len: usize,
    threshold: f64,
    train_secs: f64,
    n_train_rows: usize,
}

impl std::fmt::Debug for TrainedMfpa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedMfpa")
            .field("model", &self.model.name())
            .field("compiled", &self.compiled.is_some())
            .field("n_features", &self.features.len())
            .field("uses_seq", &self.uses_seq)
            .field("threshold", &self.threshold)
            .finish()
    }
}

impl TrainedMfpa {
    /// The underlying model's name.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// The feature columns the model consumes, in canonical order.
    pub fn features(&self) -> &[FeatureId] {
        &self.features
    }

    /// Whether the model consumes sequence windows instead of flat rows.
    pub fn uses_sequence(&self) -> bool {
        self.uses_seq
    }

    /// Compiles the trained model into a flat scoring engine
    /// ([`mfpa_ml::CompiledEnsemble`]). A no-op when already compiled
    /// or when the model family has no compiled form (everything except
    /// the tree ensembles). Returns whether a compiled engine is now
    /// present.
    pub fn compile(&mut self) -> bool {
        if self.compiled.is_none() {
            self.compiled = self.model.compile();
        }
        self.compiled.is_some()
    }

    /// The compiled scoring engine, if [`TrainedMfpa::compile`] (or the
    /// [`MfpaConfig::compile`] knob) produced one.
    pub fn compiled(&self) -> Option<&mfpa_ml::CompiledEnsemble> {
        self.compiled.as_ref()
    }

    /// Serializes the compiled engine to its `.mfpac` artifact bytes,
    /// if one is present. Pair with
    /// [`TrainedMfpa::install_compiled_artifact`] on the monitor side.
    pub fn compiled_artifact(&self) -> Option<Vec<u8>> {
        self.compiled
            .as_ref()
            .map(mfpa_ml::CompiledEnsemble::to_bytes)
    }

    /// Installs a compiled engine decoded from `.mfpac` artifact bytes:
    /// the monitor-process path that picks up a pushed model without
    /// refitting. Every scoring sweep after this reuses the engine.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] when the artifact is corrupt or truncated,
    /// or disagrees with this model's feature width.
    pub fn install_compiled_artifact(&mut self, bytes: &[u8]) -> Result<(), CoreError> {
        let engine = mfpa_ml::CompiledEnsemble::from_bytes(bytes).map_err(CoreError::from)?;
        if engine.n_features() != self.features.len() {
            return Err(CoreError::Model(format!(
                "compiled artifact expects {} features, model selects {}",
                engine.n_features(),
                self.features.len()
            )));
        }
        self.compiled = Some(engine);
        Ok(())
    }

    /// Seconds spent fitting.
    pub fn train_secs(&self) -> f64 {
        self.train_secs
    }

    /// Training rows after under-sampling.
    pub fn n_train_rows(&self) -> usize {
        self.n_train_rows
    }

    /// Scores the given rows (probability of failure).
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors.
    pub fn predict_rows(&self, prepared: &Prepared, rows: &[usize]) -> Result<Vec<f64>, CoreError> {
        let frame = if self.uses_seq {
            &prepared.samples.seq
        } else {
            &prepared.samples.flat
        };
        let cols = col_indices(&self.features, self.uses_seq, self.seq_len);
        let sub = frame.select_rows(rows).select_cols(&cols);
        self.predict_matrix(sub.matrix())
    }

    /// Scores a raw feature matrix whose columns are already the model's
    /// selected features (used by the deployment-style examples).
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors.
    pub fn predict_matrix(&self, x: &Matrix) -> Result<Vec<f64>, CoreError> {
        // Chokepoint: every batch-scoring path in the crate lands here,
        // so a compiled engine accelerates them all at once.
        match &self.compiled {
            Some(c) => Ok(c.predict_proba(x)?),
            None => Ok(self.model.predict_proba(x)?),
        }
    }

    /// Evaluates the given rows at both sample and drive granularity.
    ///
    /// # Errors
    ///
    /// Propagates model prediction errors.
    pub fn evaluate_rows(
        &self,
        prepared: &Prepared,
        rows: &[usize],
        name: &str,
    ) -> Result<EvalReport, CoreError> {
        let t0 = Instant::now();
        let probs = self.predict_rows(prepared, rows)?;
        let predict_secs = t0.elapsed().as_secs_f64();

        let frame = &prepared.samples.flat;
        let labels: Vec<bool> = rows.iter().map(|&i| frame.labels()[i]).collect();
        let preds: Vec<bool> = probs.iter().map(|&p| p >= self.threshold).collect();
        let sample = MetricSet {
            cm: ConfusionMatrix::from_labels(&labels, &preds),
            auc: auc(&labels, &probs),
        };

        // Drive-level aggregation: a drive is flagged when any of its
        // test rows crosses the threshold; it is truly faulty when any of
        // its test rows is a positive sample.
        let mut per_drive: BTreeMap<u64, (bool, f64)> = BTreeMap::new();
        for ((&row, &label), &p) in rows.iter().zip(&labels).zip(&probs) {
            let group = frame.meta()[row].group;
            let entry = per_drive.entry(group).or_insert((false, 0.0));
            entry.0 |= label;
            entry.1 = entry.1.max(p);
        }
        // Labelled failures with no telemetry in their positive window are
        // unpredictable by construction; when their label day falls inside
        // the evaluation window they are drive-level misses (the paper's
        // "faulty disks with no data around IMT − θ" TPR penalty).
        let window = rows.iter().map(|&r| frame.meta()[r].time).fold(
            None::<(i64, i64)>,
            |acc, t| match acc {
                None => Some((t, t)),
                Some((lo, hi)) => Some((lo.min(t), hi.max(t))),
            },
        );
        if let Some((lo, hi)) = window {
            for &(group, label_day) in &prepared.samples.unwindowed_failures {
                if label_day >= lo && label_day <= hi {
                    per_drive.entry(group).or_insert((true, 0.0)).0 = true;
                }
            }
        }
        let drive_labels: Vec<bool> = per_drive.values().map(|&(l, _)| l).collect();
        let drive_scores: Vec<f64> = per_drive.values().map(|&(_, s)| s).collect();
        let drive_preds: Vec<bool> = drive_scores.iter().map(|&s| s >= self.threshold).collect();
        let drive = MetricSet {
            cm: ConfusionMatrix::from_labels(&drive_labels, &drive_preds),
            auc: auc(&drive_labels, &drive_scores),
        };

        Ok(EvalReport {
            name: name.to_owned(),
            sample,
            drive,
            n_test_drives: per_drive.len(),
            n_failed_test_drives: drive_labels.iter().filter(|&&l| l).count(),
            timings: StageTimings {
                n_train_rows: self.n_train_rows,
                train_secs: self.train_secs,
                n_test_rows: rows.len(),
                predict_secs,
                ..Default::default()
            },
        })
    }
}

/// Column indices of the selected features inside the flat or sequence
/// frame.
fn col_indices(features: &[FeatureId], uses_seq: bool, seq_len: usize) -> Vec<usize> {
    let n_full = FeatureId::full_row().len();
    let base: Vec<usize> = features.iter().map(FeatureId::full_index).collect();
    if !uses_seq {
        return base;
    }
    (0..seq_len)
        .flat_map(|t| base.iter().map(move |&c| t * n_full + c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_fleetsim::FleetConfig;

    fn fleet() -> &'static SimulatedFleet {
        static FLEET: std::sync::OnceLock<SimulatedFleet> = std::sync::OnceLock::new();
        FLEET.get_or_init(|| SimulatedFleet::generate(&FleetConfig::tiny(11)))
    }

    #[test]
    fn full_run_produces_sane_report() {
        let cfg = MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest);
        let report = Mfpa::new(cfg).run(fleet()).unwrap();
        assert!(report.drive.auc > 0.6, "drive AUC = {}", report.drive.auc);
        assert!(report.n_test_drives > 0);
        assert!(report.timings.n_train_rows > 0);
        assert!(report.timings.n_test_rows > 0);
    }

    #[test]
    fn prepare_exposes_counts() {
        let cfg = MfpaConfig::new(FeatureGroup::S, Algorithm::Bayes);
        let prepared = Mfpa::new(cfg).prepare(fleet()).unwrap();
        assert!(prepared.n_series() > 0);
        assert!(prepared.n_rows() > prepared.n_series()); // multiple days per drive
        assert!(!prepared.failure_days().is_empty());
        assert!(prepared.n_raw_records() >= prepared.n_rows() / 2);
    }

    #[test]
    fn vendor_restriction_filters_samples() {
        let all = Mfpa::new(MfpaConfig::new(FeatureGroup::S, Algorithm::Bayes))
            .prepare(fleet())
            .unwrap();
        let only_ii =
            Mfpa::new(MfpaConfig::new(FeatureGroup::S, Algorithm::Bayes).with_vendor(Vendor::II))
                .prepare(fleet())
                .unwrap();
        assert!(only_ii.n_rows() < all.n_rows());
        assert!(only_ii
            .samples()
            .flat
            .meta()
            .iter()
            .all(|m| m.tag == Vendor::II.index() as u32));
    }

    #[test]
    fn feature_group_changes_model_width() {
        let cfg = MfpaConfig::new(FeatureGroup::W, Algorithm::RandomForest);
        let report = Mfpa::new(cfg).run(fleet()).unwrap();
        assert!(report.sample.auc > 0.0);
        // Custom columns override the group.
        let custom = MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest)
            .with_custom_columns(FeatureGroup::S.features());
        assert_eq!(custom.selected_features().len(), 16);
        assert!(custom.label().contains("custom"));
    }

    #[test]
    fn rows_in_window_filters_by_time() {
        let cfg = MfpaConfig::new(FeatureGroup::S, Algorithm::Bayes);
        let prepared = Mfpa::new(cfg).prepare(fleet()).unwrap();
        let rows = prepared.rows_in_window(0, 30);
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|&r| (0..30).contains(&prepared.samples().flat.meta()[r].time)));
    }

    #[test]
    fn col_indices_for_sequences() {
        let feats = FeatureGroup::S.features();
        let flat = col_indices(&feats, false, 5);
        assert_eq!(flat.len(), 16);
        let seq = col_indices(&feats, true, 3);
        assert_eq!(seq.len(), 48);
        assert_eq!(seq[16], 45); // second step starts at the next block
    }

    #[test]
    fn degenerate_training_window_is_reported() {
        let cfg = MfpaConfig::new(FeatureGroup::S, Algorithm::Bayes);
        let mfpa = Mfpa::new(cfg);
        let prepared = mfpa.prepare(fleet()).unwrap();
        // Rows restricted to negatives only (healthy drives' early days).
        let neg_rows: Vec<usize> = prepared
            .samples()
            .flat
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, &l)| !l)
            .map(|(i, _)| i)
            .take(50)
            .collect();
        let err = mfpa.train_rows(&prepared, &neg_rows).unwrap_err();
        assert!(matches!(err, CoreError::DegenerateTrainingSet(_)));
    }

    #[test]
    fn sanitize_is_identity_on_clean_fleets() {
        let cfg = MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest);
        assert!(cfg.sanitize.is_some(), "sanitization is on by default");
        let on = Mfpa::new(cfg.clone()).run(fleet()).unwrap();
        let off = Mfpa::new(cfg.with_sanitize(None)).run(fleet()).unwrap();
        assert_eq!(on.sample.cm, off.sample.cm);
        assert_eq!(on.drive.cm, off.drive.cm);
        assert_eq!(on.sample.auc.to_bits(), off.sample.auc.to_bits());
        assert_eq!(on.drive.auc.to_bits(), off.drive.auc.to_bits());
        assert_eq!(on.timings.n_quarantined, 0);
        assert_eq!(on.timings.n_repaired, 0);
    }

    #[test]
    fn prepared_surfaces_sanitize_report() {
        let cfg = MfpaConfig::new(FeatureGroup::S, Algorithm::Bayes);
        let prepared = Mfpa::new(cfg).prepare(fleet()).unwrap();
        let report = prepared.sanitize_report();
        assert!(
            report.is_clean(),
            "clean fleet must sanitize cleanly: {report:?}"
        );
        assert_eq!(report.input_records, prepared.n_raw_records());
        assert_eq!(report.kept_records, prepared.n_raw_records());
    }

    #[test]
    fn ratio_split_also_works() {
        let cfg = MfpaConfig::new(FeatureGroup::Sf, Algorithm::Bayes)
            .with_split(SplitStrategy::Ratio { test_fraction: 0.3 });
        let report = Mfpa::new(cfg).run(fleet()).unwrap();
        assert!(report.timings.n_test_rows > 0);
    }
}
