//! Identification of the eventual failure time (§III-C(2), Fig 7).
//!
//! Trouble tickets record the *initial maintenance time* (IMT) — when the
//! user sought repair — not when the drive died. The paper aligns each
//! ticket with the drive's tracking points: if the tracking point closest
//! to the IMT is within θ days, that point is the failure time; otherwise
//! `IMT − θ` is used. θ = 7 was chosen by sensitivity analysis — too high
//! and pre-failure features look healthy (FPR up), too low and faulty
//! drives have no data near the label (TPR down).

use std::collections::BTreeMap;

use mfpa_telemetry::{SerialNumber, TroubleTicket};
use serde::{Deserialize, Serialize};

use crate::preprocess::CleanSeries;

/// θ-labelling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelingConfig {
    /// The ticket-to-tracking-point alignment threshold (days).
    pub theta: i64,
}

impl Default for LabelingConfig {
    fn default() -> Self {
        LabelingConfig { theta: 7 }
    }
}

/// Identifies the failure day for one drive from its ticket.
///
/// Returns `None` when the series has no tracking point at or before the
/// IMT (the drive's usable data ended long before the ticket).
pub fn identify_failure_day(
    series: &CleanSeries,
    ticket: &TroubleTicket,
    config: &LabelingConfig,
) -> Option<i64> {
    let imt = ticket.imt().day();
    // The tracking point closest to the IMT from below (the machine
    // cannot report after the drive died).
    let ix = series.index_at_or_before(imt)?;
    let pt = series.days[ix];
    let interval = imt - pt;
    if interval <= config.theta {
        Some(pt)
    } else {
        Some(imt - config.theta)
    }
}

/// Labels every ticketed drive in a collection of series.
///
/// Returns `serial → failure day` as an ordered map (iteration must
/// stay deterministic wherever it feeds output). Drives without a
/// usable label are
/// omitted (the paper's "many faulty disks have no data around
/// IMT − θ" case).
pub fn label_failures(
    series: &[CleanSeries],
    tickets: &[TroubleTicket],
    config: &LabelingConfig,
) -> BTreeMap<SerialNumber, i64> {
    let by_serial: BTreeMap<SerialNumber, &CleanSeries> =
        series.iter().map(|s| (s.serial, s)).collect();
    let mut labels = BTreeMap::new();
    for ticket in tickets {
        if let Some(s) = by_serial.get(&ticket.serial()) {
            if let Some(day) = identify_failure_day(s, ticket, config) {
                labels.insert(ticket.serial(), day);
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfpa_telemetry::{DayStamp, FailureCause, Vendor};

    fn series(days: &[i64]) -> CleanSeries {
        CleanSeries {
            serial: SerialNumber::new(Vendor::I, 1),
            vendor: Vendor::I,
            days: days.to_vec(),
            rows: days.iter().map(|_| vec![0.0; 45]).collect(),
            imputed: vec![false; days.len()],
        }
    }

    fn ticket(imt: i64) -> TroubleTicket {
        TroubleTicket::new(
            SerialNumber::new(Vendor::I, 1),
            DayStamp::new(imt),
            FailureCause::StorageDriveFailure,
        )
    }

    #[test]
    fn close_tracking_point_wins() {
        // Last point 50, IMT 53, θ=7 → failure at 50.
        let s = series(&[40, 45, 50]);
        let day = identify_failure_day(&s, &ticket(53), &LabelingConfig::default());
        assert_eq!(day, Some(50));
    }

    #[test]
    fn distant_ticket_uses_imt_minus_theta() {
        // Last point 50, IMT 80 → interval 30 > θ → label 80 − 7 = 73.
        let s = series(&[40, 45, 50]);
        let day = identify_failure_day(&s, &ticket(80), &LabelingConfig::default());
        assert_eq!(day, Some(73));
    }

    #[test]
    fn ticket_before_any_data_is_unlabelable() {
        let s = series(&[40, 45, 50]);
        assert_eq!(
            identify_failure_day(&s, &ticket(39), &LabelingConfig::default()),
            None
        );
    }

    #[test]
    fn exact_match_day() {
        let s = series(&[40, 45, 50]);
        let day = identify_failure_day(&s, &ticket(45), &LabelingConfig::default());
        assert_eq!(day, Some(45));
    }

    #[test]
    fn theta_boundary_inclusive() {
        let s = series(&[50]);
        let cfg = LabelingConfig { theta: 7 };
        assert_eq!(identify_failure_day(&s, &ticket(57), &cfg), Some(50));
        assert_eq!(identify_failure_day(&s, &ticket(58), &cfg), Some(51));
    }

    #[test]
    fn label_failures_maps_by_serial() {
        let s = series(&[10, 11, 12]);
        let labels = label_failures(
            std::slice::from_ref(&s),
            &[ticket(13)],
            &LabelingConfig::default(),
        );
        assert_eq!(labels.get(&s.serial), Some(&12));
        // A ticket for an unknown serial is ignored.
        let other = TroubleTicket::new(
            SerialNumber::new(Vendor::II, 9),
            DayStamp::new(13),
            FailureCause::Bootloop,
        );
        let labels = label_failures(&[s], &[other], &LabelingConfig::default());
        assert!(labels.is_empty());
    }
}
