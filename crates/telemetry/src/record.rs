//! Daily telemetry records and per-drive histories.
//!
//! The paper's dataset schema (§III-C(1)): serial number, model, timestamp,
//! interface, capacity, `S{1..m}`, `F`, `W{1..i}`, `B{1..i}`. A
//! [`DailyRecord`] is one row of that table; a [`DriveHistory`] is the
//! time-ordered sequence of rows for one drive, which — because consumer
//! machines are not powered on every day — is typically *discontinuous*.

use serde::{Deserialize, Serialize};

use crate::bsod::BsodCode;
use crate::drive::{DriveModel, SerialNumber};
use crate::firmware::FirmwareVersion;
use crate::smart::SmartValues;
use crate::time::DayStamp;
use crate::windows_event::WindowsEventId;

/// One drive-day of telemetry: SMART values, firmware version, and the
/// number of tracked Windows events / BSODs observed *on that day*.
///
/// Daily W/B counts are noisy; the pipeline accumulates them
/// (`mfpa_core`'s preprocessing) because "the daily number of W and B is
/// hard to detect trends" (§III-C(1)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyRecord {
    /// Day the record was collected.
    pub day: DayStamp,
    /// SMART attribute values at collection time.
    pub smart: SmartValues,
    /// Firmware version running on that day.
    pub firmware: FirmwareVersion,
    /// Daily occurrence counts for the 9 tracked Windows events, indexed
    /// by [`WindowsEventId::index`].
    pub w_counts: [u32; 9],
    /// Daily occurrence counts for the 23 tracked BSOD stop codes, indexed
    /// by [`BsodCode::index`].
    pub b_counts: [u32; 23],
}

impl DailyRecord {
    /// Daily count of one Windows event.
    pub fn w(&self, id: WindowsEventId) -> u32 {
        self.w_counts[id.index()]
    }

    /// Daily count of one BSOD stop code.
    pub fn b(&self, code: BsodCode) -> u32 {
        self.b_counts[code.index()]
    }

    /// Total W + B occurrences on this day (quick severity gauge).
    pub fn event_total(&self) -> u32 {
        self.w_counts.iter().sum::<u32>() + self.b_counts.iter().sum::<u32>()
    }
}

/// The time-ordered telemetry history of one drive.
///
/// Invariant: records are strictly increasing in `day` (one record per
/// observed day). Constructing a history sorts and deduplicates by day,
/// keeping the last record for a duplicated day.
///
/// # Example
///
/// ```
/// use mfpa_telemetry::{DailyRecord, DriveHistory, DriveModel, FirmwareVersion,
///                      SerialNumber, SmartValues, Vendor, DayStamp};
///
/// let rec = |d: i64| DailyRecord {
///     day: DayStamp::new(d),
///     smart: SmartValues::default(),
///     firmware: FirmwareVersion::new(Vendor::I, 1),
///     w_counts: [0; 9],
///     b_counts: [0; 23],
/// };
/// let h = DriveHistory::new(
///     SerialNumber::new(Vendor::I, 7),
///     DriveModel::ALL[0],
///     vec![rec(5), rec(0), rec(9)],
/// );
/// assert_eq!(h.observed_days(), vec![DayStamp::new(0), DayStamp::new(5), DayStamp::new(9)]);
/// assert_eq!(h.max_gap(), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveHistory {
    serial: SerialNumber,
    model: DriveModel,
    records: Vec<DailyRecord>,
}

impl DriveHistory {
    /// Creates a history, sorting records by day and dropping duplicate
    /// days (last record wins).
    pub fn new(serial: SerialNumber, model: DriveModel, mut records: Vec<DailyRecord>) -> Self {
        records.sort_by_key(|r| r.day);
        // Keep the *last* record of a duplicated day: dedup_by removes the
        // earlier element when the closure returns true for (later, earlier)
        // pairs scanned right-to-left, so reverse, dedup (first wins =
        // chronologically last), and restore order.
        records.reverse();
        records.dedup_by_key(|r| r.day);
        records.reverse();
        DriveHistory {
            serial,
            model,
            records,
        }
    }

    /// The drive's serial number.
    pub fn serial(&self) -> SerialNumber {
        self.serial
    }

    /// The drive's model.
    pub fn model(&self) -> DriveModel {
        self.model
    }

    /// Records in chronological order.
    pub fn records(&self) -> &[DailyRecord] {
        &self.records
    }

    /// Number of observed days.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the history contains no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The observed day stamps, ascending.
    pub fn observed_days(&self) -> Vec<DayStamp> {
        self.records.iter().map(|r| r.day).collect()
    }

    /// First observed day, if any.
    pub fn first_day(&self) -> Option<DayStamp> {
        self.records.first().map(|r| r.day)
    }

    /// Last observed day, if any.
    pub fn last_day(&self) -> Option<DayStamp> {
        self.records.last().map(|r| r.day)
    }

    /// The record collected on `day`, if that day was observed.
    pub fn record_on(&self, day: DayStamp) -> Option<&DailyRecord> {
        self.records
            .binary_search_by_key(&day, |r| r.day)
            .ok()
            .map(|ix| &self.records[ix])
    }

    /// The latest record at or before `day`, if any.
    pub fn record_at_or_before(&self, day: DayStamp) -> Option<&DailyRecord> {
        match self.records.binary_search_by_key(&day, |r| r.day) {
            Ok(ix) => Some(&self.records[ix]),
            Err(0) => None,
            Err(ix) => Some(&self.records[ix - 1]),
        }
    }

    /// Gaps between consecutive observed days, in days (a gap of 1 means
    /// consecutive days).
    pub fn gaps(&self) -> Vec<i64> {
        self.records
            .windows(2)
            .map(|w| w[1].day - w[0].day)
            .collect()
    }

    /// The largest observation gap, if the history has at least two
    /// records.
    pub fn max_gap(&self) -> Option<i64> {
        self.gaps().into_iter().max()
    }

    /// Cumulative count of one Windows event up to and including each
    /// observed day — the transformation behind Fig 4.
    pub fn cumulative_w(&self, id: WindowsEventId) -> Vec<(DayStamp, u64)> {
        let mut acc = 0u64;
        self.records
            .iter()
            .map(|r| {
                acc += u64::from(r.w(id));
                (r.day, acc)
            })
            .collect()
    }

    /// Cumulative count of one BSOD stop code up to and including each
    /// observed day — the transformation behind Fig 5.
    pub fn cumulative_b(&self, code: BsodCode) -> Vec<(DayStamp, u64)> {
        let mut acc = 0u64;
        self.records
            .iter()
            .map(|r| {
                acc += u64::from(r.b(code));
                (r.day, acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::Vendor;

    fn rec(day: i64, w161: u32) -> DailyRecord {
        let mut w = [0u32; 9];
        w[WindowsEventId::W161.index()] = w161;
        DailyRecord {
            day: DayStamp::new(day),
            smart: SmartValues::default(),
            firmware: FirmwareVersion::new(Vendor::I, 1),
            w_counts: w,
            b_counts: [0; 23],
        }
    }

    fn history(records: Vec<DailyRecord>) -> DriveHistory {
        DriveHistory::new(SerialNumber::new(Vendor::I, 1), DriveModel::ALL[0], records)
    }

    #[test]
    fn construction_sorts_and_dedups_keeping_last() {
        let h = history(vec![rec(5, 1), rec(0, 2), rec(5, 9)]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.records()[1].w(WindowsEventId::W161), 9);
        assert_eq!(h.first_day(), Some(DayStamp::new(0)));
        assert_eq!(h.last_day(), Some(DayStamp::new(5)));
    }

    #[test]
    fn gaps_reflect_discontinuity() {
        // Paper Fig 6: F1 has logs at (0, 2-6, 9-13).
        let days = [0, 2, 3, 4, 5, 6, 9, 10, 11, 12, 13];
        let h = history(days.iter().map(|&d| rec(d, 0)).collect());
        assert_eq!(h.max_gap(), Some(3));
        assert_eq!(h.gaps().iter().filter(|&&g| g > 1).count(), 2);
    }

    #[test]
    fn record_lookup() {
        let h = history(vec![rec(0, 0), rec(3, 0), rec(7, 0)]);
        assert!(h.record_on(DayStamp::new(3)).is_some());
        assert!(h.record_on(DayStamp::new(4)).is_none());
        assert_eq!(
            h.record_at_or_before(DayStamp::new(5)).map(|r| r.day),
            Some(DayStamp::new(3))
        );
        assert_eq!(
            h.record_at_or_before(DayStamp::new(-1)).map(|r| r.day),
            None
        );
        assert_eq!(
            h.record_at_or_before(DayStamp::new(100)).map(|r| r.day),
            Some(DayStamp::new(7))
        );
    }

    #[test]
    fn cumulative_counts_are_monotone() {
        let h = history(vec![rec(0, 1), rec(1, 0), rec(2, 3)]);
        let cum = h.cumulative_w(WindowsEventId::W161);
        let values: Vec<u64> = cum.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1, 1, 4]);
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_history_behaves() {
        let h = history(vec![]);
        assert!(h.is_empty());
        assert_eq!(h.max_gap(), None);
        assert_eq!(h.first_day(), None);
    }

    #[test]
    fn event_total_sums_w_and_b() {
        let mut r = rec(0, 2);
        r.b_counts[BsodCode::B0x50.index()] = 3;
        assert_eq!(r.event_total(), 5);
        assert_eq!(r.b(BsodCode::B0x50), 3);
    }
}
