//! Day-granularity timestamps.
//!
//! Consumer storage systems cannot be sampled at hour/minute granularity
//! (§II challenge (2) of the paper): the paper's dataset, and therefore our
//! whole pipeline, works on *days*. [`DayStamp`] is a newtype over a day
//! index relative to the start of the observation campaign.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A day index relative to the start of the observation campaign (day 0).
///
/// `DayStamp` is ordered and supports day arithmetic; differences are plain
/// `i64` day counts.
///
/// # Example
///
/// ```
/// use mfpa_telemetry::DayStamp;
///
/// let start = DayStamp::new(10);
/// let later = start + 7;
/// assert_eq!(later - start, 7);
/// assert!(later > start);
/// assert_eq!(later.to_string(), "d17");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DayStamp(i64);

impl DayStamp {
    /// The first day of the observation campaign.
    pub const ZERO: DayStamp = DayStamp(0);

    /// Creates a day stamp from a raw day index.
    ///
    /// Negative indices are allowed; they denote days before the campaign
    /// started (useful for drives deployed before observation began).
    pub fn new(day: i64) -> Self {
        DayStamp(day)
    }

    /// Returns the raw day index.
    pub fn day(self) -> i64 {
        self.0
    }

    /// Returns the stamp `n` days earlier, i.e. `self - n`.
    ///
    /// This is the operation used when the paper labels a failure at
    /// `IMT - θ` (§III-C(2)).
    pub fn days_before(self, n: i64) -> Self {
        DayStamp(self.0 - n)
    }

    /// Returns the stamp `n` days later.
    pub fn days_after(self, n: i64) -> Self {
        DayStamp(self.0 + n)
    }

    /// Absolute distance in days between two stamps.
    pub fn distance(self, other: DayStamp) -> i64 {
        (self.0 - other.0).abs()
    }

    /// The calendar month index of this stamp (30-day months, month 0 starts
    /// at day 0). Used by the temporal-stability experiment (Fig 12/16).
    pub fn month(self) -> i64 {
        self.0.div_euclid(30)
    }
}

impl fmt::Display for DayStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<i64> for DayStamp {
    fn from(day: i64) -> Self {
        DayStamp(day)
    }
}

impl Add<i64> for DayStamp {
    type Output = DayStamp;

    fn add(self, rhs: i64) -> DayStamp {
        DayStamp(self.0 + rhs)
    }
}

impl AddAssign<i64> for DayStamp {
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub<i64> for DayStamp {
    type Output = DayStamp;

    fn sub(self, rhs: i64) -> DayStamp {
        DayStamp(self.0 - rhs)
    }
}

impl Sub for DayStamp {
    type Output = i64;

    fn sub(self, rhs: DayStamp) -> i64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let d = DayStamp::new(42);
        assert_eq!((d + 5) - 5, d);
        assert_eq!(d.days_before(7).day(), 35);
        assert_eq!(d.days_after(7).day(), 49);
    }

    #[test]
    fn difference_is_signed() {
        assert_eq!(DayStamp::new(3) - DayStamp::new(10), -7);
        assert_eq!(DayStamp::new(10) - DayStamp::new(3), 7);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = DayStamp::new(3);
        let b = DayStamp::new(10);
        assert_eq!(a.distance(b), 7);
        assert_eq!(b.distance(a), 7);
    }

    #[test]
    fn month_boundaries() {
        assert_eq!(DayStamp::new(0).month(), 0);
        assert_eq!(DayStamp::new(29).month(), 0);
        assert_eq!(DayStamp::new(30).month(), 1);
        assert_eq!(DayStamp::new(-1).month(), -1);
    }

    #[test]
    fn ordering_follows_day_index() {
        assert!(DayStamp::new(1) < DayStamp::new(2));
        assert_eq!(DayStamp::ZERO, DayStamp::new(0));
    }

    #[test]
    fn display_format() {
        assert_eq!(DayStamp::new(-3).to_string(), "d-3");
    }
}
