//! Windows event-log IDs correlated with SSD failure.
//!
//! Table III of the paper: nine `WindowsEventViewer` event IDs whose
//! occurrence counts were found to be early, *system-level* signals of SSD
//! failure in consumer machines. Of these, five are used as model features
//! (Table V); the feature subset lives in `mfpa-core`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A Windows event-log ID tracked by the study (Table III).
///
/// The variant discriminants are the real Windows event IDs, so
/// [`WindowsEventId::W161`] is event 161 — the event whose cumulative count
/// separates healthy from faulty drives in Fig 4.
///
/// # Example
///
/// ```
/// use mfpa_telemetry::WindowsEventId;
///
/// assert_eq!(WindowsEventId::W11.id(), 11);
/// assert!(WindowsEventId::W11.description().contains("controller error"));
/// assert_eq!(WindowsEventId::ALL.len(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum WindowsEventId {
    /// Event 7 — the device has a bad block.
    W7 = 7,
    /// Event 11 — the driver detected a controller error on the disk.
    W11 = 11,
    /// Event 15 — the device is not ready for access yet.
    W15 = 15,
    /// Event 49 — configuring the page file for crash dump failed.
    W49 = 49,
    /// Event 51 — an error was detected during a paging operation.
    W51 = 51,
    /// Event 52 — the driver detected that the device predicted its own
    /// failure (SMART trip surfaced by the OS).
    W52 = 52,
    /// Event 154 — an I/O operation at a logical block address failed due
    /// to a hardware error.
    W154 = 154,
    /// Event 157 — the disk was surprise-removed.
    W157 = 157,
    /// Event 161 — file-system error during I/O on a database; the metric
    /// plotted in Fig 4.
    W161 = 161,
}

impl WindowsEventId {
    /// All nine tracked events, in ascending ID order.
    pub const ALL: [WindowsEventId; 9] = [
        WindowsEventId::W7,
        WindowsEventId::W11,
        WindowsEventId::W15,
        WindowsEventId::W49,
        WindowsEventId::W51,
        WindowsEventId::W52,
        WindowsEventId::W154,
        WindowsEventId::W157,
        WindowsEventId::W161,
    ];

    /// The numeric Windows event ID.
    pub fn id(self) -> u16 {
        self as u16
    }

    /// Looks an event up by its numeric Windows ID.
    pub fn from_id(id: u16) -> Option<WindowsEventId> {
        WindowsEventId::ALL.iter().copied().find(|e| e.id() == id)
    }

    /// Zero-based index into per-record count vectors. Total by
    /// construction: the match mirrors the `ALL` order (locked by the
    /// `index_roundtrips_through_all` test), so no table lookup — and
    /// no panic path — is needed.
    pub fn index(self) -> usize {
        match self {
            WindowsEventId::W7 => 0,
            WindowsEventId::W11 => 1,
            WindowsEventId::W15 => 2,
            WindowsEventId::W49 => 3,
            WindowsEventId::W51 => 4,
            WindowsEventId::W52 => 5,
            WindowsEventId::W154 => 6,
            WindowsEventId::W157 => 7,
            WindowsEventId::W161 => 8,
        }
    }

    /// The event description from Table III.
    pub fn description(self) -> &'static str {
        match self {
            WindowsEventId::W7 => "The device has a bad block",
            WindowsEventId::W11 => "The driver detects a controller error on Disk_i",
            WindowsEventId::W15 => "The Disk_i is not ready for access yet",
            WindowsEventId::W49 => "Configuring the page file for crash dump fails",
            WindowsEventId::W51 => "An error is detected on device during a paging operation",
            WindowsEventId::W52 => "The driver detects that device has predicted it will fail",
            WindowsEventId::W154 => {
                "The IO operation at a logical block address for Disk_i fails due to a hardware error"
            }
            WindowsEventId::W157 => "Disk has been surprisingly removed",
            WindowsEventId::W161 => "File system error during IO on database",
        }
    }
}

impl fmt::Display for WindowsEventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W_{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_match_windows_event_numbers() {
        assert_eq!(WindowsEventId::W7.id(), 7);
        assert_eq!(WindowsEventId::W161.id(), 161);
        for e in WindowsEventId::ALL {
            assert_eq!(WindowsEventId::from_id(e.id()), Some(e));
        }
        assert_eq!(WindowsEventId::from_id(42), None);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, e) in WindowsEventId::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn descriptions_nonempty_and_unique() {
        let mut d: Vec<&str> = WindowsEventId::ALL
            .iter()
            .map(|e| e.description())
            .collect();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 9);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(WindowsEventId::W161.to_string(), "W_161");
    }

    #[test]
    fn index_roundtrips_through_all() {
        for (ix, ev) in WindowsEventId::ALL.iter().enumerate() {
            assert_eq!(ev.index(), ix, "{ev:?}");
            assert_eq!(WindowsEventId::ALL[ev.index()], *ev);
        }
    }
}
