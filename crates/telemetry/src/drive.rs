//! Vendors, drive models and serial numbers of the studied fleet.
//!
//! Table VI of the paper: four anonymised manufacturers (I–IV), 12 drive
//! models of different capacities (128 GB – 1 TB) and NAND layer counts
//! (32 – 96 layers), all M.2-2280 NVMe drives with 3D TLC flash.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::firmware::FirmwareNaming;

/// One of the four anonymised SSD manufacturers of Table VI.
///
/// # Example
///
/// ```
/// use mfpa_telemetry::Vendor;
///
/// assert_eq!(Vendor::I.paper_population(), 270_325);
/// assert_eq!(Vendor::I.paper_failures(), 1_850);
/// assert!((Vendor::I.paper_replacement_rate() - 0.0068).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Manufacturer I — largest replacement rate (0.0068).
    I,
    /// Manufacturer II — largest population, RR 0.0007.
    II,
    /// Manufacturer III — RR 0.0005.
    III,
    /// Manufacturer IV — smallest population, RR 0.0011; too few faulty
    /// drives for a good per-vendor model (§IV(4)).
    IV,
}

impl Vendor {
    /// All four vendors in paper order.
    pub const ALL: [Vendor; 4] = [Vendor::I, Vendor::II, Vendor::III, Vendor::IV];

    /// Zero-based index (I → 0, …, IV → 3).
    pub fn index(self) -> usize {
        match self {
            Vendor::I => 0,
            Vendor::II => 1,
            Vendor::III => 2,
            Vendor::IV => 3,
        }
    }

    /// Looks a vendor up by zero-based index.
    pub fn from_index(ix: usize) -> Option<Vendor> {
        Vendor::ALL.get(ix).copied()
    }

    /// Fleet population reported in Table VI.
    pub fn paper_population(self) -> u64 {
        match self {
            Vendor::I => 270_325,
            Vendor::II => 1_001_278,
            Vendor::III => 908_037,
            Vendor::IV => 152_405,
        }
    }

    /// Failure (replacement) count reported in Table VI.
    pub fn paper_failures(self) -> u64 {
        match self {
            Vendor::I => 1_850,
            Vendor::II => 669,
            Vendor::III => 463,
            Vendor::IV => 172,
        }
    }

    /// Replacement rate reported in Table VI (failures / population,
    /// rounded the way the paper prints it).
    pub fn paper_replacement_rate(self) -> f64 {
        match self {
            Vendor::I => 0.0068,
            Vendor::II => 0.0007,
            Vendor::III => 0.0005,
            Vendor::IV => 0.0011,
        }
    }

    /// Number of firmware versions observed in the field for this vendor
    /// (Fig 3: I has 5, II has 3, III and IV have 2).
    pub fn firmware_count(self) -> u32 {
        match self {
            Vendor::I => 5,
            Vendor::II => 3,
            Vendor::III => 2,
            Vendor::IV => 2,
        }
    }

    /// The firmware naming scheme this vendor uses (Observation #2 notes
    /// the conventions range from strings to numeric values).
    pub fn firmware_naming(self) -> FirmwareNaming {
        match self {
            Vendor::I => FirmwareNaming::AlphaNumeric,
            Vendor::II => FirmwareNaming::Numeric,
            Vendor::III => FirmwareNaming::Dotted,
            Vendor::IV => FirmwareNaming::AlphaNumeric,
        }
    }

    /// The drive models this vendor ships (12 across all vendors).
    pub fn models(self) -> &'static [DriveModel] {
        let ix = self.index();
        let lo: usize = MODELS_PER_VENDOR[..ix].iter().sum();
        &DriveModel::ALL[lo..lo + MODELS_PER_VENDOR[ix]]
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Vendor::I => "I",
            Vendor::II => "II",
            Vendor::III => "III",
            Vendor::IV => "IV",
        };
        f.write_str(s)
    }
}

/// Drive capacity of the studied models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Capacity {
    /// 128 GB.
    Gb128,
    /// 256 GB.
    Gb256,
    /// 512 GB.
    Gb512,
    /// 1 TB.
    Tb1,
}

impl Capacity {
    /// The capacity in gigabytes (the value stored in SMART `S_16`).
    pub fn gigabytes(self) -> u32 {
        match self {
            Capacity::Gb128 => 128,
            Capacity::Gb256 => 256,
            Capacity::Gb512 => 512,
            Capacity::Tb1 => 1024,
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Capacity::Tb1 {
            f.write_str("1TB")
        } else {
            write!(f, "{}GB", self.gigabytes())
        }
    }
}

const MODELS_PER_VENDOR: [usize; 4] = [3, 4, 3, 2];

/// One of the 12 studied drive models.
///
/// All models share the form factor (M.2 2280), protocol (NVMe 1.x) and
/// flash technology (3D TLC) per Table VI; they differ in vendor, capacity
/// and NAND layer count.
///
/// # Example
///
/// ```
/// use mfpa_telemetry::{DriveModel, Vendor};
///
/// assert_eq!(DriveModel::ALL.len(), 12);
/// let m = &DriveModel::ALL[0];
/// assert_eq!(m.vendor(), Vendor::I);
/// assert_eq!(m.form_factor(), "M.2 (2280)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DriveModel {
    vendor: Vendor,
    ordinal: u8,
    capacity: Capacity,
    layers: u16,
}

impl DriveModel {
    /// The 12 studied models: 3 + 4 + 3 + 2 across vendors I–IV, spanning
    /// 128 GB – 1 TB and 32 – 96 NAND layers.
    pub const ALL: [DriveModel; 12] = [
        DriveModel {
            vendor: Vendor::I,
            ordinal: 1,
            capacity: Capacity::Gb128,
            layers: 32,
        },
        DriveModel {
            vendor: Vendor::I,
            ordinal: 2,
            capacity: Capacity::Gb256,
            layers: 64,
        },
        DriveModel {
            vendor: Vendor::I,
            ordinal: 3,
            capacity: Capacity::Gb512,
            layers: 64,
        },
        DriveModel {
            vendor: Vendor::II,
            ordinal: 1,
            capacity: Capacity::Gb128,
            layers: 32,
        },
        DriveModel {
            vendor: Vendor::II,
            ordinal: 2,
            capacity: Capacity::Gb256,
            layers: 64,
        },
        DriveModel {
            vendor: Vendor::II,
            ordinal: 3,
            capacity: Capacity::Gb512,
            layers: 96,
        },
        DriveModel {
            vendor: Vendor::II,
            ordinal: 4,
            capacity: Capacity::Tb1,
            layers: 96,
        },
        DriveModel {
            vendor: Vendor::III,
            ordinal: 1,
            capacity: Capacity::Gb256,
            layers: 64,
        },
        DriveModel {
            vendor: Vendor::III,
            ordinal: 2,
            capacity: Capacity::Gb512,
            layers: 96,
        },
        DriveModel {
            vendor: Vendor::III,
            ordinal: 3,
            capacity: Capacity::Tb1,
            layers: 96,
        },
        DriveModel {
            vendor: Vendor::IV,
            ordinal: 1,
            capacity: Capacity::Gb256,
            layers: 32,
        },
        DriveModel {
            vendor: Vendor::IV,
            ordinal: 2,
            capacity: Capacity::Gb512,
            layers: 64,
        },
    ];

    /// The manufacturer of this model.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// 1-based model ordinal within the vendor's line-up.
    pub fn ordinal(&self) -> u8 {
        self.ordinal
    }

    /// Advertised capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// 3D NAND layer count (32 – 96 in the studied fleet).
    pub fn layers(&self) -> u16 {
        self.layers
    }

    /// Form factor, identical for the whole fleet.
    pub fn form_factor(&self) -> &'static str {
        "M.2 (2280)"
    }

    /// Protocol, identical for the whole fleet.
    pub fn protocol(&self) -> &'static str {
        "NVMe1.*"
    }

    /// Flash technology, identical for the whole fleet.
    pub fn flash_tech(&self) -> &'static str {
        "3D TLC"
    }

    /// Zero-based index into [`DriveModel::ALL`]. `ALL` is ordered by
    /// vendor then ordinal, so the index is the models-per-vendor
    /// prefix sum plus the 1-based ordinal within the vendor — total,
    /// with no table scan or panic path (roundtrip locked by the
    /// `index_roundtrips_through_all` test).
    pub fn index(&self) -> usize {
        let v = self.vendor.index();
        debug_assert!(v <= MODELS_PER_VENDOR.len());
        let before: usize = MODELS_PER_VENDOR[..v].iter().sum();
        before + usize::from(self.ordinal).saturating_sub(1)
    }
}

impl fmt::Display for DriveModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-M{} {} {}L",
            self.vendor, self.ordinal, self.capacity, self.layers
        )
    }
}

/// A drive serial number: unique identifier of one SSD in the fleet.
///
/// Serial numbers are opaque; ordering exists only to make them usable as
/// map keys. The display form mimics vendor-prefixed field serials.
///
/// # Example
///
/// ```
/// use mfpa_telemetry::{SerialNumber, Vendor};
///
/// let sn = SerialNumber::new(Vendor::II, 42);
/// assert_eq!(sn.vendor(), Vendor::II);
/// assert_eq!(sn.to_string(), "SSD-II-0000000042");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SerialNumber {
    vendor: Vendor,
    id: u64,
}

impl SerialNumber {
    /// Creates a serial number for drive `id` of `vendor`.
    pub fn new(vendor: Vendor, id: u64) -> Self {
        SerialNumber { vendor, id }
    }

    /// The manufacturer encoded in the serial.
    pub fn vendor(self) -> Vendor {
        self.vendor
    }

    /// The per-vendor numeric identifier.
    pub fn id(self) -> u64 {
        self.id
    }

    /// Deterministic shard assignment for a monitor sharded `n_shards`
    /// ways: a SplitMix64-style finalizer over `(vendor, id)` reduced
    /// modulo `n_shards`. Every layer that routes by drive — the online
    /// fleet monitor, shard-targeted transport-fault injection — must
    /// use this one function so "shard" means the same drive set
    /// everywhere. `n_shards = 0` is treated as 1.
    pub fn shard(self, n_shards: usize) -> usize {
        let mut z = self
            .id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((self.vendor.index() as u64) + 1) << 58);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % (n_shards.max(1) as u64)) as usize
    }
}

impl fmt::Display for SerialNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SSD-{}-{:010}", self.vendor, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_covers_all_shards() {
        let n = 8;
        let mut seen = vec![false; n];
        for id in 0..500u64 {
            for vendor in Vendor::ALL {
                let s = SerialNumber::new(vendor, id);
                let shard = s.shard(n);
                assert!(shard < n);
                assert_eq!(shard, s.shard(n), "assignment must be pure");
                seen[shard] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "500 drives must hit all 8 shards");
        // Degenerate shard counts collapse to one shard, not a panic.
        assert_eq!(SerialNumber::new(Vendor::I, 3).shard(0), 0);
        assert_eq!(SerialNumber::new(Vendor::I, 3).shard(1), 0);
    }

    #[test]
    fn twelve_models_partitioned_by_vendor() {
        assert_eq!(DriveModel::ALL.len(), 12);
        let total: usize = Vendor::ALL.iter().map(|v| v.models().len()).sum();
        assert_eq!(total, 12);
        for v in Vendor::ALL {
            assert!(v.models().iter().all(|m| m.vendor() == v));
        }
    }

    #[test]
    fn model_index_roundtrip() {
        for (i, m) in DriveModel::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn table_vi_totals() {
        let population: u64 = Vendor::ALL.iter().map(|v| v.paper_population()).sum();
        assert_eq!(population, 2_332_045); // "nearly 2.3 million SSDs"
        let failures: u64 = Vendor::ALL.iter().map(|v| v.paper_failures()).sum();
        assert_eq!(failures, 3_154);
    }

    #[test]
    fn replacement_rates_consistent_with_counts() {
        for v in Vendor::ALL {
            let exact = v.paper_failures() as f64 / v.paper_population() as f64;
            assert!(
                (exact - v.paper_replacement_rate()).abs() < 5e-4,
                "{v}: {exact} vs {}",
                v.paper_replacement_rate()
            );
        }
    }

    #[test]
    fn firmware_counts_match_fig3() {
        let counts: Vec<u32> = Vendor::ALL.iter().map(|v| v.firmware_count()).collect();
        assert_eq!(counts, vec![5, 3, 2, 2]);
    }

    #[test]
    fn vendor_index_roundtrip() {
        for v in Vendor::ALL {
            assert_eq!(Vendor::from_index(v.index()), Some(v));
        }
        assert_eq!(Vendor::from_index(4), None);
    }

    #[test]
    fn capacities_and_layers_span_paper_range() {
        let min_cap = DriveModel::ALL
            .iter()
            .map(|m| m.capacity().gigabytes())
            .min();
        let max_cap = DriveModel::ALL
            .iter()
            .map(|m| m.capacity().gigabytes())
            .max();
        assert_eq!(min_cap, Some(128));
        assert_eq!(max_cap, Some(1024));
        let min_layers = DriveModel::ALL.iter().map(|m| m.layers()).min();
        let max_layers = DriveModel::ALL.iter().map(|m| m.layers()).max();
        assert_eq!(min_layers, Some(32));
        assert_eq!(max_layers, Some(96));
    }

    #[test]
    fn serial_display_is_sortable_and_prefixed() {
        let a = SerialNumber::new(Vendor::I, 1);
        let b = SerialNumber::new(Vendor::I, 2);
        assert!(a < b);
        assert!(a.to_string().starts_with("SSD-I-"));
    }

    #[test]
    fn index_roundtrips_through_all() {
        for (ix, m) in DriveModel::ALL.iter().enumerate() {
            assert_eq!(m.index(), ix, "{m}");
            assert_eq!(DriveModel::ALL[m.index()], *m);
        }
    }
}
