//! BlueScreenOfDeath stop codes correlated with SSD failure.
//!
//! Table IV of the paper lists the stop codes whose daily counts were
//! tracked; the paper's feature-group table (Table V) counts 23 BSOD
//! features. The OCR of Table IV yields 22 distinct codes; we add the
//! classic storage-related `0x1E KMODE_EXCEPTION_NOT_HANDLED` to restore
//! the 23-feature width and note the substitution in DESIGN.md.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A BlueScreenOfDeath stop code tracked by the study (Table IV).
///
/// Discriminants are the real NT bug-check codes, so
/// [`BsodCode::B0x50`] is `PAGE_FAULT_IN_NONPAGED_AREA` — the code whose
/// cumulative count is plotted in Fig 5 (`B_50`).
///
/// # Example
///
/// ```
/// use mfpa_telemetry::BsodCode;
///
/// assert_eq!(BsodCode::B0x50.code(), 0x50);
/// assert_eq!(BsodCode::B0x50.name(), "PAGE_FAULT_IN_NONPAGED_AREA");
/// assert_eq!(BsodCode::ALL.len(), 23);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u32)]
#[allow(clippy::upper_case_acronyms)]
pub enum BsodCode {
    /// `0x1E KMODE_EXCEPTION_NOT_HANDLED` (restored 23rd feature).
    B0x1E = 0x1E,
    /// `0x23 FAT_FILE_SYSTEM`.
    B0x23 = 0x23,
    /// `0x24 NTFS_FILE_SYSTEM`.
    B0x24 = 0x24,
    /// `0x48 CANCEL_STATE_IN_COMPLETED_IRP`.
    B0x48 = 0x48,
    /// `0x50 PAGE_FAULT_IN_NONPAGED_AREA` (`B_50`, Fig 5).
    B0x50 = 0x50,
    /// `0x6B PROCESS1_INITIALIZATION_FAILED`.
    B0x6B = 0x6B,
    /// `0x77 KERNEL_STACK_INPAGE_ERROR`.
    B0x77 = 0x77,
    /// `0x7A KERNEL_DATA_INPAGE_ERROR` (`B_7A`, flagged important in §IV(2.2)).
    B0x7A = 0x7A,
    /// `0x80 NMI_HARDWARE_FAILURE`.
    B0x80 = 0x80,
    /// `0x9B UDFS_FILE_SYSTEM`.
    B0x9B = 0x9B,
    /// `0xC7 TIMER_OR_DPC_INVALID`.
    B0xC7 = 0xC7,
    /// `0xDA SYSTEM_PTE_MISUSE`.
    B0xDA = 0xDA,
    /// `0xE4 WORKER_INVALID`.
    B0xE4 = 0xE4,
    /// `0xFC ATTEMPTED_EXECUTE_OF_NOEXECUTE_MEMORY`.
    B0xFC = 0xFC,
    /// `0x10C FSRTL_EXTRA_CREATE_PARAMETER_VIOLATION`.
    B0x10C = 0x10C,
    /// `0x12C EXFAT_FILE_SYSTEM`.
    B0x12C = 0x12C,
    /// `0x135 REGISTRY_FILTER_DRIVER_EXCEPTION`.
    B0x135 = 0x135,
    /// `0x13B PASSIVE_INTERRUPT_ERROR`.
    B0x13B = 0x13B,
    /// `0x157 KERNEL_THREAD_PRIORITY_FLOOR_VIOLATION`.
    B0x157 = 0x157,
    /// `0x17E MICROCODE_REVISION_MISMATCH`.
    B0x17E = 0x17E,
    /// `0x189 BAD_OBJECT_HEADER`.
    B0x189 = 0x189,
    /// `0x1DB IPI_WATCHDOG_TIMEOUT`.
    B0x1DB = 0x1DB,
    /// `0xC00 STATUS_CANNOT_LOAD`.
    B0xC00 = 0xC00,
}

impl BsodCode {
    /// All 23 tracked stop codes, in ascending code order.
    pub const ALL: [BsodCode; 23] = [
        BsodCode::B0x1E,
        BsodCode::B0x23,
        BsodCode::B0x24,
        BsodCode::B0x48,
        BsodCode::B0x50,
        BsodCode::B0x6B,
        BsodCode::B0x77,
        BsodCode::B0x7A,
        BsodCode::B0x80,
        BsodCode::B0x9B,
        BsodCode::B0xC7,
        BsodCode::B0xDA,
        BsodCode::B0xE4,
        BsodCode::B0xFC,
        BsodCode::B0x10C,
        BsodCode::B0x12C,
        BsodCode::B0x135,
        BsodCode::B0x13B,
        BsodCode::B0x157,
        BsodCode::B0x17E,
        BsodCode::B0x189,
        BsodCode::B0x1DB,
        BsodCode::B0xC00,
    ];

    /// The NT bug-check code.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Looks a stop code up by its numeric bug-check code.
    pub fn from_code(code: u32) -> Option<BsodCode> {
        BsodCode::ALL.iter().copied().find(|b| b.code() == code)
    }

    /// Zero-based index into per-record count vectors. Total by
    /// construction: the match mirrors the `ALL` order (locked by the
    /// `index_roundtrips_through_all` test), so no table lookup — and
    /// no panic path — is needed.
    pub fn index(self) -> usize {
        match self {
            BsodCode::B0x1E => 0,
            BsodCode::B0x23 => 1,
            BsodCode::B0x24 => 2,
            BsodCode::B0x48 => 3,
            BsodCode::B0x50 => 4,
            BsodCode::B0x6B => 5,
            BsodCode::B0x77 => 6,
            BsodCode::B0x7A => 7,
            BsodCode::B0x80 => 8,
            BsodCode::B0x9B => 9,
            BsodCode::B0xC7 => 10,
            BsodCode::B0xDA => 11,
            BsodCode::B0xE4 => 12,
            BsodCode::B0xFC => 13,
            BsodCode::B0x10C => 14,
            BsodCode::B0x12C => 15,
            BsodCode::B0x135 => 16,
            BsodCode::B0x13B => 17,
            BsodCode::B0x157 => 18,
            BsodCode::B0x17E => 19,
            BsodCode::B0x189 => 20,
            BsodCode::B0x1DB => 21,
            BsodCode::B0xC00 => 22,
        }
    }

    /// The symbolic bug-check name.
    pub fn name(self) -> &'static str {
        match self {
            BsodCode::B0x1E => "KMODE_EXCEPTION_NOT_HANDLED",
            BsodCode::B0x23 => "FAT_FILE_SYSTEM",
            BsodCode::B0x24 => "NTFS_FILE_SYSTEM",
            BsodCode::B0x48 => "CANCEL_STATE_IN_COMPLETED_IRP",
            BsodCode::B0x50 => "PAGE_FAULT_IN_NONPAGED_AREA",
            BsodCode::B0x6B => "PROCESS1_INITIALIZATION_FAILED",
            BsodCode::B0x77 => "KERNEL_STACK_INPAGE_ERROR",
            BsodCode::B0x7A => "KERNEL_DATA_INPAGE_ERROR",
            BsodCode::B0x80 => "NMI_HARDWARE_FAILURE",
            BsodCode::B0x9B => "UDFS_FILE_SYSTEM",
            BsodCode::B0xC7 => "TIMER_OR_DPC_INVALID",
            BsodCode::B0xDA => "SYSTEM_PTE_MISUSE",
            BsodCode::B0xE4 => "WORKER_INVALID",
            BsodCode::B0xFC => "ATTEMPTED_EXECUTE_OF_NOEXECUTE_MEMORY",
            BsodCode::B0x10C => "FSRTL_EXTRA_CREATE_PARAMETER_VIOLATION",
            BsodCode::B0x12C => "EXFAT_FILE_SYSTEM",
            BsodCode::B0x135 => "REGISTRY_FILTER_DRIVER_EXCEPTION",
            BsodCode::B0x13B => "PASSIVE_INTERRUPT_ERROR",
            BsodCode::B0x157 => "KERNEL_THREAD_PRIORITY_FLOOR_VIOLATION",
            BsodCode::B0x17E => "MICROCODE_REVISION_MISMATCH",
            BsodCode::B0x189 => "BAD_OBJECT_HEADER",
            BsodCode::B0x1DB => "IPI_WATCHDOG_TIMEOUT",
            BsodCode::B0xC00 => "STATUS_CANNOT_LOAD",
        }
    }

    /// Whether the stop code is directly storage-I/O related (file-system
    /// and inpage errors), as opposed to generic hardware/kernel faults.
    ///
    /// The fleet simulator gives storage-related codes a much stronger
    /// pre-failure ramp, mirroring §III-B Observation #4.
    pub fn is_storage_related(self) -> bool {
        matches!(
            self,
            BsodCode::B0x23
                | BsodCode::B0x24
                | BsodCode::B0x50
                | BsodCode::B0x77
                | BsodCode::B0x7A
                | BsodCode::B0x9B
                | BsodCode::B0x12C
                | BsodCode::B0xC00
        )
    }
}

impl fmt::Display for BsodCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B_{:X}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_codes_sorted_ascending() {
        assert_eq!(BsodCode::ALL.len(), 23);
        for w in BsodCode::ALL.windows(2) {
            assert!(w[0].code() < w[1].code());
        }
    }

    #[test]
    fn lookup_roundtrip() {
        for b in BsodCode::ALL {
            assert_eq!(BsodCode::from_code(b.code()), Some(b));
            assert_eq!(BsodCode::ALL[b.index()], b);
        }
        assert_eq!(BsodCode::from_code(0xDEAD), None);
    }

    #[test]
    fn names_unique() {
        let mut n: Vec<&str> = BsodCode::ALL.iter().map(|b| b.name()).collect();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), 23);
    }

    #[test]
    fn b50_is_page_fault() {
        assert_eq!(BsodCode::B0x50.name(), "PAGE_FAULT_IN_NONPAGED_AREA");
        assert!(BsodCode::B0x50.is_storage_related());
        assert!(!BsodCode::B0x17E.is_storage_related());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(BsodCode::B0x7A.to_string(), "B_7A");
        assert_eq!(BsodCode::B0x10C.to_string(), "B_10C");
    }

    #[test]
    fn index_roundtrips_through_all() {
        for (ix, code) in BsodCode::ALL.iter().enumerate() {
            assert_eq!(code.index(), ix, "{code:?}");
            assert_eq!(BsodCode::ALL[code.index()], *code);
        }
    }
}
