//! SMART attributes for consumer M.2 NVMe SSDs.
//!
//! Table II of the paper: beyond capacity, the vendors expose 15 SMART
//! features for the studied M.2 drives; with capacity that makes the 16
//! attributes below. The NVMe SMART/Health log nomenclature is used.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the 16 SMART attributes reported by the studied consumer NVMe
/// SSDs (Table II of the paper).
///
/// The discriminants match the paper's `S_1 … S_16` numbering, so
/// [`SmartAttr::PowerOnHours`] is `S_12` — the attribute used to plot the
/// bathtub failure distribution (Fig 2).
///
/// # Example
///
/// ```
/// use mfpa_telemetry::SmartAttr;
///
/// assert_eq!(SmartAttr::PowerOnHours.id(), 12);
/// assert_eq!(SmartAttr::from_id(12), Some(SmartAttr::PowerOnHours));
/// assert_eq!(SmartAttr::ALL.len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SmartAttr {
    /// `S_1` — critical warning bitfield from the NVMe SMART/Health log.
    CriticalWarning = 1,
    /// `S_2` — composite controller temperature.
    CompositeTemperature = 2,
    /// `S_3` — normalised remaining spare capacity (starts at 100).
    AvailableSpare = 3,
    /// `S_4` — spare threshold below which the drive reports degraded.
    AvailableSpareThreshold = 4,
    /// `S_5` — vendor estimate of NAND life consumed (percent).
    PercentageUsed = 5,
    /// `S_6` — data units read (512 kB units).
    DataUnitsRead = 6,
    /// `S_7` — data units written (512 kB units).
    DataUnitsWritten = 7,
    /// `S_8` — host read commands completed.
    HostReadCommands = 8,
    /// `S_9` — host write commands completed.
    HostWriteCommands = 9,
    /// `S_10` — controller busy time (minutes).
    ControllerBusyTime = 10,
    /// `S_11` — number of power cycles.
    PowerCycles = 11,
    /// `S_12` — power-on hours; drives Fig 2's bathtub curve.
    PowerOnHours = 12,
    /// `S_13` — unsafe (unclean) shutdown count.
    UnsafeShutdowns = 13,
    /// `S_14` — media and data-integrity error count.
    MediaErrors = 14,
    /// `S_15` — number of entries in the error-information log.
    ErrorLogEntries = 15,
    /// `S_16` — drive capacity (GB). Constant per drive.
    Capacity = 16,
}

impl SmartAttr {
    /// All 16 attributes in `S_1 … S_16` order.
    pub const ALL: [SmartAttr; 16] = [
        SmartAttr::CriticalWarning,
        SmartAttr::CompositeTemperature,
        SmartAttr::AvailableSpare,
        SmartAttr::AvailableSpareThreshold,
        SmartAttr::PercentageUsed,
        SmartAttr::DataUnitsRead,
        SmartAttr::DataUnitsWritten,
        SmartAttr::HostReadCommands,
        SmartAttr::HostWriteCommands,
        SmartAttr::ControllerBusyTime,
        SmartAttr::PowerCycles,
        SmartAttr::PowerOnHours,
        SmartAttr::UnsafeShutdowns,
        SmartAttr::MediaErrors,
        SmartAttr::ErrorLogEntries,
        SmartAttr::Capacity,
    ];

    /// The paper's `S_i` identifier (1-based).
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Looks an attribute up by its `S_i` identifier.
    pub fn from_id(id: u8) -> Option<SmartAttr> {
        SmartAttr::ALL.get(id.checked_sub(1)? as usize).copied()
    }

    /// Zero-based index into [`SmartValues`] storage.
    pub fn index(self) -> usize {
        self as usize - 1
    }

    /// Human-readable attribute name, as printed in Table II.
    pub fn name(self) -> &'static str {
        match self {
            SmartAttr::CriticalWarning => "Critical Warning",
            SmartAttr::CompositeTemperature => "Composite Temperature",
            SmartAttr::AvailableSpare => "Available Spare",
            SmartAttr::AvailableSpareThreshold => "Available Spare Threshold",
            SmartAttr::PercentageUsed => "Percentage Used",
            SmartAttr::DataUnitsRead => "Data Units Read",
            SmartAttr::DataUnitsWritten => "Data Units Written",
            SmartAttr::HostReadCommands => "Host Read Commands",
            SmartAttr::HostWriteCommands => "Host Write Commands",
            SmartAttr::ControllerBusyTime => "Controller Busy Time",
            SmartAttr::PowerCycles => "Power Cycles",
            SmartAttr::PowerOnHours => "Power On Hours",
            SmartAttr::UnsafeShutdowns => "Unsafe Shutdowns",
            SmartAttr::MediaErrors => "Error Media and Data Integrity Errors",
            SmartAttr::ErrorLogEntries => "Number of Error Information Log Entries",
            SmartAttr::Capacity => "Capacity",
        }
    }

    /// Whether the attribute is cumulative over the drive's life (counters
    /// that never decrease, e.g. power-on hours) as opposed to
    /// instantaneous gauges (e.g. temperature).
    ///
    /// Cumulative attributes are the ones whose *deltas* carry degradation
    /// information; the fleet simulator enforces monotonicity for them.
    pub fn is_cumulative(self) -> bool {
        !matches!(
            self,
            SmartAttr::CriticalWarning
                | SmartAttr::CompositeTemperature
                | SmartAttr::AvailableSpare
                | SmartAttr::AvailableSpareThreshold
                | SmartAttr::Capacity
        )
    }
}

impl fmt::Display for SmartAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S_{}", self.id())
    }
}

/// A dense vector of the 16 SMART attribute values for one drive-day.
///
/// Values are stored as `f64` (SMART counters are integers in the field,
/// but the learning pipeline consumes floats throughout).
///
/// # Example
///
/// ```
/// use mfpa_telemetry::{SmartAttr, SmartValues};
///
/// let mut s = SmartValues::default();
/// s.set(SmartAttr::PowerOnHours, 1234.0);
/// assert_eq!(s.get(SmartAttr::PowerOnHours), 1234.0);
/// assert_eq!(s.as_slice().len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SmartValues {
    values: [f64; 16],
}

impl SmartValues {
    /// Creates a value vector from raw storage in `S_1 … S_16` order.
    pub fn from_array(values: [f64; 16]) -> Self {
        SmartValues { values }
    }

    /// Reads one attribute.
    pub fn get(&self, attr: SmartAttr) -> f64 {
        let i = attr.index();
        debug_assert!(i < self.values.len());
        self.values[i]
    }

    /// Writes one attribute.
    pub fn set(&mut self, attr: SmartAttr, value: f64) {
        self.values[attr.index()] = value;
    }

    /// All 16 values in `S_1 … S_16` order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(attribute, value)` pairs in `S_1 … S_16` order.
    pub fn iter(&self) -> impl Iterator<Item = (SmartAttr, f64)> + '_ {
        SmartAttr::ALL.iter().map(move |&a| (a, self.get(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_attributes_with_stable_ids() {
        for (i, attr) in SmartAttr::ALL.iter().enumerate() {
            assert_eq!(attr.id() as usize, i + 1);
            assert_eq!(SmartAttr::from_id(attr.id()), Some(*attr));
            assert_eq!(attr.index(), i);
        }
        assert_eq!(SmartAttr::from_id(0), None);
        assert_eq!(SmartAttr::from_id(17), None);
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = SmartAttr::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn cumulative_classification() {
        assert!(SmartAttr::PowerOnHours.is_cumulative());
        assert!(SmartAttr::MediaErrors.is_cumulative());
        assert!(!SmartAttr::CompositeTemperature.is_cumulative());
        assert!(!SmartAttr::AvailableSpare.is_cumulative());
        assert!(!SmartAttr::Capacity.is_cumulative());
    }

    #[test]
    fn values_roundtrip() {
        let mut v = SmartValues::default();
        for attr in SmartAttr::ALL {
            v.set(attr, attr.id() as f64 * 10.0);
        }
        for attr in SmartAttr::ALL {
            assert_eq!(v.get(attr), attr.id() as f64 * 10.0);
        }
        let collected: Vec<f64> = v.iter().map(|(_, x)| x).collect();
        assert_eq!(collected, v.as_slice());
    }

    #[test]
    fn display_uses_paper_numbering() {
        assert_eq!(SmartAttr::PowerOnHours.to_string(), "S_12");
    }

    #[test]
    fn serde_roundtrip() {
        let mut v = SmartValues::default();
        v.set(SmartAttr::MediaErrors, 7.0);
        let json = serde_json::to_string(&v).unwrap();
        let back: SmartValues = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
