//! Domain types for consumer SSD telemetry.
//!
//! This crate defines the vocabulary shared by the whole MFPA reproduction:
//! the 16 SMART attributes reported for consumer M.2 NVMe SSDs (Table II of
//! the paper), the Windows event IDs (Table III) and BlueScreenOfDeath stop
//! codes (Table IV) that were found to be early signals of SSD failure, the
//! firmware-version naming schemes of the four anonymised vendors, the
//! drive/vendor/model taxonomy of the studied fleet (Table VI), the daily
//! telemetry record schema, and the RaSRF trouble-ticket taxonomy (Table I).
//!
//! Everything here is plain data: the synthetic fleet generator lives in
//! `mfpa-fleetsim` and the learning pipeline in `mfpa-core`.
//!
//! # Example
//!
//! ```
//! use mfpa_telemetry::{SmartAttr, Vendor, WindowsEventId, BsodCode};
//!
//! assert_eq!(SmartAttr::ALL.len(), 16);
//! assert_eq!(WindowsEventId::ALL.len(), 9);
//! assert_eq!(BsodCode::ALL.len(), 23);
//! assert_eq!(Vendor::ALL.len(), 4);
//! assert_eq!(SmartAttr::PowerOnHours.name(), "Power On Hours");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bsod;
mod drive;
mod firmware;
mod record;
mod smart;
mod ticket;
mod time;
mod windows_event;

pub use bsod::BsodCode;
pub use drive::{Capacity, DriveModel, SerialNumber, Vendor};
pub use firmware::{FirmwareNaming, FirmwareVersion};
pub use record::{DailyRecord, DriveHistory};
pub use smart::{SmartAttr, SmartValues};
pub use ticket::{FailureCause, FailureLevel, TroubleTicket};
pub use time::DayStamp;
pub use windows_event::WindowsEventId;
