//! Trouble tickets and the RaSRF failure taxonomy.
//!
//! Table I of the paper ("RaSRF — Replaced as SSD_Related Failures")
//! classifies the trouble tickets whose resolution was an SSD replacement:
//! 31.62% manifest as *drive-level* failures and 68.38% as *system-level*
//! failures (boot/shutdown problems, system-running problems, application
//! errors). A [`TroubleTicket`] carries the drive's serial number, the
//! *initial maintenance time* (IMT — when the user finally brought the
//! machine in, not when the drive actually failed) and the failure cause.
//!
//! Two of Table I's per-cause percentages are illegible in the source
//! scan (`Unable to boot/shutdown` and `Bootloop`); they are reconstructed
//! from the printed category subtotal (48.21% of failures happen at
//! boot/shutdown) and flagged in DESIGN.md.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::drive::SerialNumber;
use crate::time::DayStamp;

/// Whether a failure manifested at the drive or at the system level.
///
/// §III-B: "SSD failures can be manifested as drive-level and system-level
/// failures"; drive-level failures are visible in SMART, system-level ones
/// often are not — which is exactly why W/B features help.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureLevel {
    /// The SSD itself was identified as faulty (31.62% of RaSRF).
    Drive,
    /// The failure surfaced as a system symptom (68.38% of RaSRF).
    System,
}

impl fmt::Display for FailureLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureLevel::Drive => "Drive Level",
            FailureLevel::System => "System Level",
        })
    }
}

/// The cause recorded on an RaSRF trouble ticket (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// Storage drive failure (components failure).
    StorageDriveFailure,
    /// Firmware upgrade failure (components failure).
    FirmwareUpgradeFailure,
    /// Overtemperature (components failure).
    Overtemperature,
    /// Blue/black screen after startup (boot/shutdown failure).
    BlueBlackScreenAfterStartup,
    /// Unable to boot or shut down (boot/shutdown failure).
    UnableToBootShutdown,
    /// Boot loop (boot/shutdown failure).
    Bootloop,
    /// Stuck startup icon (boot/shutdown failure).
    StuckStartupIcon,
    /// Response delay / blue screen while running (system running failure).
    ResponseDelayBlueScreen,
    /// Unauthorized system installation prompt (system running failure).
    UnauthorizedSystemInstallation,
    /// System partition damage (system running failure).
    SystemPartitionDamage,
    /// Automatic shutdown / restart (system running failure).
    AutomaticShutdownRestart,
    /// System upgrade / recovery failure (system running failure).
    SystemUpgradeRecoveryFailure,
    /// Apps crash / report errors / get stuck (application error).
    AppsCrash,
}

impl FailureCause {
    /// All 13 Table I causes, drive-level first.
    pub const ALL: [FailureCause; 13] = [
        FailureCause::StorageDriveFailure,
        FailureCause::FirmwareUpgradeFailure,
        FailureCause::Overtemperature,
        FailureCause::BlueBlackScreenAfterStartup,
        FailureCause::UnableToBootShutdown,
        FailureCause::Bootloop,
        FailureCause::StuckStartupIcon,
        FailureCause::ResponseDelayBlueScreen,
        FailureCause::UnauthorizedSystemInstallation,
        FailureCause::SystemPartitionDamage,
        FailureCause::AutomaticShutdownRestart,
        FailureCause::SystemUpgradeRecoveryFailure,
        FailureCause::AppsCrash,
    ];

    /// The failure level this cause belongs to.
    pub fn level(self) -> FailureLevel {
        match self {
            FailureCause::StorageDriveFailure
            | FailureCause::FirmwareUpgradeFailure
            | FailureCause::Overtemperature => FailureLevel::Drive,
            _ => FailureLevel::System,
        }
    }

    /// Table I category (the middle column).
    pub fn category(self) -> &'static str {
        match self {
            FailureCause::StorageDriveFailure
            | FailureCause::FirmwareUpgradeFailure
            | FailureCause::Overtemperature => "Components failure",
            FailureCause::BlueBlackScreenAfterStartup
            | FailureCause::UnableToBootShutdown
            | FailureCause::Bootloop
            | FailureCause::StuckStartupIcon => "Boot/Shutdown failure",
            FailureCause::ResponseDelayBlueScreen
            | FailureCause::UnauthorizedSystemInstallation
            | FailureCause::SystemPartitionDamage
            | FailureCause::AutomaticShutdownRestart
            | FailureCause::SystemUpgradeRecoveryFailure => "System running failure",
            FailureCause::AppsCrash => "Application error",
        }
    }

    /// The cause description printed in Table I.
    pub fn description(self) -> &'static str {
        match self {
            FailureCause::StorageDriveFailure => "Storage drive failure",
            FailureCause::FirmwareUpgradeFailure => "Firmware upgrade failure",
            FailureCause::Overtemperature => "Overtemperature",
            FailureCause::BlueBlackScreenAfterStartup => "Blue/Black screen after startup",
            FailureCause::UnableToBootShutdown => "Unable to boot/shutdown",
            FailureCause::Bootloop => "Bootloop",
            FailureCause::StuckStartupIcon => "Stuck startup icon",
            FailureCause::ResponseDelayBlueScreen => "Response delay/blue screen",
            FailureCause::UnauthorizedSystemInstallation => "Unauthorized system installation",
            FailureCause::SystemPartitionDamage => "System partition damage",
            FailureCause::AutomaticShutdownRestart => "Automatic shutdown/restart",
            FailureCause::SystemUpgradeRecoveryFailure => "System upgrade/recovery failure",
            FailureCause::AppsCrash => "Apps crash/report errors/stuck",
        }
    }

    /// Percentage of all RaSRF tickets attributed to this cause (Table I).
    ///
    /// Percentages sum to 100; the two OCR-illegible boot/shutdown rows
    /// are reconstructed so the boot/shutdown category totals 48.21%.
    pub fn paper_percentage(self) -> f64 {
        match self {
            FailureCause::StorageDriveFailure => 31.13,
            FailureCause::FirmwareUpgradeFailure => 0.42,
            FailureCause::Overtemperature => 0.07,
            FailureCause::BlueBlackScreenAfterStartup => 21.44,
            FailureCause::UnableToBootShutdown => 17.32, // reconstructed
            FailureCause::Bootloop => 6.25,              // reconstructed
            FailureCause::StuckStartupIcon => 3.20,
            FailureCause::ResponseDelayBlueScreen => 8.66,
            FailureCause::UnauthorizedSystemInstallation => 5.43,
            FailureCause::SystemPartitionDamage => 2.58,
            FailureCause::AutomaticShutdownRestart => 1.94,
            FailureCause::SystemUpgradeRecoveryFailure => 0.78,
            FailureCause::AppsCrash => 0.77,
        }
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.description())
    }
}

/// A trouble ticket recording an SSD replacement (one RaSRF row).
///
/// The `imt` (initial maintenance time) is when the user sought repair —
/// typically *days after* the actual failure, which is why the paper's
/// labelling step needs the θ threshold (§III-C(2)).
///
/// # Example
///
/// ```
/// use mfpa_telemetry::{FailureCause, SerialNumber, TroubleTicket, Vendor, DayStamp};
///
/// let t = TroubleTicket::new(
///     SerialNumber::new(Vendor::I, 3),
///     DayStamp::new(120),
///     FailureCause::StorageDriveFailure,
/// );
/// assert_eq!(t.imt().day(), 120);
/// assert_eq!(t.cause().level(), mfpa_telemetry::FailureLevel::Drive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TroubleTicket {
    serial: SerialNumber,
    imt: DayStamp,
    cause: FailureCause,
}

impl TroubleTicket {
    /// Creates a ticket for `serial`, brought in at `imt` with `cause`.
    pub fn new(serial: SerialNumber, imt: DayStamp, cause: FailureCause) -> Self {
        TroubleTicket { serial, imt, cause }
    }

    /// The replaced drive's serial number.
    pub fn serial(&self) -> SerialNumber {
        self.serial
    }

    /// Initial maintenance time: the day the user sought repair.
    pub fn imt(&self) -> DayStamp {
        self.imt
    }

    /// The recorded failure cause.
    pub fn cause(&self) -> FailureCause {
        self.cause
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::Vendor;

    #[test]
    fn percentages_sum_to_hundred() {
        let total: f64 = FailureCause::ALL.iter().map(|c| c.paper_percentage()).sum();
        assert!((total - 100.0).abs() < 0.02, "total = {total}");
    }

    #[test]
    fn level_split_matches_table_i() {
        let drive: f64 = FailureCause::ALL
            .iter()
            .filter(|c| c.level() == FailureLevel::Drive)
            .map(|c| c.paper_percentage())
            .sum();
        let system: f64 = FailureCause::ALL
            .iter()
            .filter(|c| c.level() == FailureLevel::System)
            .map(|c| c.paper_percentage())
            .sum();
        assert!((drive - 31.62).abs() < 0.01, "drive = {drive}");
        assert!((system - 68.38).abs() < 0.01, "system = {system}");
    }

    #[test]
    fn boot_shutdown_category_totals_48_21() {
        let boot: f64 = FailureCause::ALL
            .iter()
            .filter(|c| c.category() == "Boot/Shutdown failure")
            .map(|c| c.paper_percentage())
            .sum();
        assert!((boot - 48.21).abs() < 0.01, "boot = {boot}");
    }

    #[test]
    fn running_plus_apps_totals_20_16() {
        let running: f64 = FailureCause::ALL
            .iter()
            .filter(|c| {
                c.category() == "System running failure" || c.category() == "Application error"
            })
            .map(|c| c.paper_percentage())
            .sum();
        assert!((running - 20.16).abs() < 0.01, "running = {running}");
    }

    #[test]
    fn ticket_accessors() {
        let t = TroubleTicket::new(
            SerialNumber::new(Vendor::III, 9),
            DayStamp::new(44),
            FailureCause::Bootloop,
        );
        assert_eq!(t.serial().vendor(), Vendor::III);
        assert_eq!(t.imt(), DayStamp::new(44));
        assert_eq!(t.cause(), FailureCause::Bootloop);
        assert_eq!(t.cause().level(), FailureLevel::System);
    }

    #[test]
    fn descriptions_unique() {
        let mut d: Vec<&str> = FailureCause::ALL.iter().map(|c| c.description()).collect();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), FailureCause::ALL.len());
    }
}
