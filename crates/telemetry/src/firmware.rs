//! Firmware versions and vendor naming schemes.
//!
//! §III-B Observation #2: firmware affects SSD availability; vendors use
//! different naming conventions (strings vs numeric values); the earlier
//! the firmware version, the higher the failure rate (Fig 3). The paper
//! normalises versions as `i_F_j`: the `j`-th firmware of vendor `i` in
//! release order. [`FirmwareVersion`] keeps both the vendor-specific raw
//! string and the normalised release sequence, so that label encoding in
//! the pipeline has a stable, chronological integer to work with.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::drive::Vendor;

/// How a vendor names its firmware releases.
///
/// # Example
///
/// ```
/// use mfpa_telemetry::FirmwareNaming;
///
/// assert_eq!(FirmwareNaming::AlphaNumeric.render(1, 3), "B3TQ");
/// assert_eq!(FirmwareNaming::Numeric.render(2, 1), "30101");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FirmwareNaming {
    /// Letter-prefixed alphanumeric strings (e.g. `B3TQ`).
    AlphaNumeric,
    /// Purely numeric build identifiers (e.g. `20101`).
    Numeric,
    /// Dotted semantic-style versions (e.g. `2.1.0`).
    Dotted,
}

impl FirmwareNaming {
    /// Renders the raw vendor string for release `seq` of vendor `vendor_ix`
    /// (both zero-based).
    pub fn render(self, vendor_ix: usize, seq: u32) -> String {
        match self {
            FirmwareNaming::AlphaNumeric => {
                let prefix = (b'A' + vendor_ix as u8) as char;
                format!("{prefix}{seq}TQ")
            }
            FirmwareNaming::Numeric => format!("{}01{:02}", vendor_ix + 1, seq),
            FirmwareNaming::Dotted => format!("{}.{}.0", vendor_ix + 1, seq),
        }
    }
}

/// A firmware version of one vendor, normalised to release order.
///
/// Ordering follows the release sequence within the same vendor, mirroring
/// the paper's `i_F_j` normalisation; versions of different vendors are
/// ordered by vendor first (this makes the type usable as a sort/encode
/// key, not a semantic cross-vendor comparison).
///
/// # Example
///
/// ```
/// use mfpa_telemetry::{FirmwareVersion, Vendor};
///
/// let f1 = FirmwareVersion::new(Vendor::I, 1);
/// let f2 = FirmwareVersion::new(Vendor::I, 2);
/// assert!(f1 < f2);
/// assert_eq!(f1.label(), "I_F_1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FirmwareVersion {
    vendor: Vendor,
    seq: u32,
}

impl FirmwareVersion {
    /// Creates the `seq`-th (1-based) firmware release of `vendor`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is zero: the paper's normalisation `i_F_j` is
    /// 1-based.
    pub fn new(vendor: Vendor, seq: u32) -> Self {
        assert!(seq >= 1, "firmware release sequence is 1-based");
        FirmwareVersion { vendor, seq }
    }

    /// The vendor that released this firmware.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// The release sequence number (1-based; 1 is the oldest release).
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// The paper's normalised label, e.g. `I_F_2`.
    pub fn label(&self) -> String {
        format!("{}_F_{}", self.vendor, self.seq)
    }

    /// The raw vendor-specific version string, e.g. `A2TQ` or `20103`.
    pub fn raw(&self) -> String {
        self.vendor
            .firmware_naming()
            .render(self.vendor.index(), self.seq)
    }

    /// Integer encoding used as the `F` model feature: the release
    /// sequence. Chronological by construction, so "earlier firmware"
    /// (higher failure rate, Fig 3) maps to smaller values.
    pub fn encoded(&self) -> f64 {
        f64::from(self.seq)
    }
}

impl fmt::Display for FirmwareVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_by_release_sequence() {
        let old = FirmwareVersion::new(Vendor::II, 1);
        let new = FirmwareVersion::new(Vendor::II, 3);
        assert!(old < new);
        assert_eq!(old.encoded(), 1.0);
        assert_eq!(new.encoded(), 3.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_sequence_rejected() {
        let _ = FirmwareVersion::new(Vendor::I, 0);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(FirmwareVersion::new(Vendor::I, 1).label(), "I_F_1");
        assert_eq!(FirmwareVersion::new(Vendor::IV, 2).label(), "IV_F_2");
    }

    #[test]
    fn raw_strings_differ_across_naming_schemes() {
        let a = FirmwareNaming::AlphaNumeric.render(0, 1);
        let n = FirmwareNaming::Numeric.render(0, 1);
        let d = FirmwareNaming::Dotted.render(0, 1);
        assert_ne!(a, n);
        assert_ne!(n, d);
        assert_eq!(a, "A1TQ");
        assert_eq!(n, "10101");
        assert_eq!(d, "1.1.0");
    }

    #[test]
    fn raw_is_deterministic() {
        let f = FirmwareVersion::new(Vendor::III, 2);
        assert_eq!(f.raw(), f.raw());
    }
}
