//! Perf trajectory: wall-clock of every pipeline stage at two fleet
//! scales, centred on the histogram-vs-exact split-search comparison
//! this optimisation is judged by.
//!
//! Each scale regenerates a fleet, then times: fleet generation,
//! `prepare` (sanitize + windowing + features), Random Forest and GBDT
//! fits with the default histogram path (`max_bins` = 256) and with the
//! exact re-sorting path (`max_bins` = 0), and batched fleet scoring.
//! Results append to stdout as a table and are written machine-readable
//! to `BENCH_PR3.json`, one row per `{stage, n_drives, n_samples,
//! wall_ms, threads}`.

use std::time::Instant;

use mfpa_core::deploy::score_fleet;
use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};
use mfpa_ml::{Classifier, Gbdt, RandomForest};
use mfpa_par::Workers;
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::section;

/// Output path for the machine-readable trajectory.
const OUT_PATH: &str = "BENCH_PR3.json";

/// One timed stage at one fleet scale.
struct StageRow {
    stage: String,
    n_drives: usize,
    n_samples: usize,
    wall_ms: f64,
    threads: usize,
}

/// Times all stages at one fleet scale, pushing rows and returning the
/// `(binned, exact)` GBDT fit times for the speedup summary.
fn bench_scale(label: &str, cfg: &FleetConfig, seed: u64, rows: &mut Vec<StageRow>) -> (f64, f64) {
    let threads = Workers::auto().get();
    println!("  [{label}] generating fleet…");
    let t0 = Instant::now();
    let fleet = SimulatedFleet::generate(cfg);
    let fleet_ms = t0.elapsed().as_secs_f64() * 1e3;
    let n_drives = fleet.drives().len();

    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::Gbdt).with_seed(seed));
    let t1 = Instant::now();
    let prepared = mfpa.prepare(&fleet).expect("prepare");
    let prepare_ms = t1.elapsed().as_secs_f64() * 1e3;
    let n_samples = prepared.n_rows();

    let x = prepared.samples().flat.matrix();
    let y = prepared.samples().flat.labels();

    // Model fits on the full prepared matrix with the pipeline's default
    // hyperparameters, binned (default) vs exact (`max_bins` = 0).
    let time_fit = |model: &mut dyn Classifier| -> f64 {
        let t = Instant::now();
        model.fit(x, y).expect("fit");
        t.elapsed().as_secs_f64() * 1e3
    };
    let rf_binned_ms = time_fit(&mut RandomForest::new(120, 12).with_seed(seed));
    let rf_exact_ms = time_fit(&mut RandomForest::new(120, 12).with_seed(seed).with_max_bins(0));
    let gbdt_binned_ms = time_fit(&mut Gbdt::new(150, 0.1, 3).with_subsample(0.8).with_seed(seed));
    let gbdt_exact_ms = time_fit(
        &mut Gbdt::new(150, 0.1, 3)
            .with_subsample(0.8)
            .with_seed(seed)
            .with_max_bins(0),
    );

    // Batched deployment scoring with the trained default model.
    let all: Vec<usize> = (0..n_samples).collect();
    let trained = mfpa.train_rows(&prepared, &all).expect("train");
    let t2 = Instant::now();
    let scores = score_fleet(fleet.drives(), &trained, 0).expect("score_fleet");
    let score_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert_eq!(scores.len(), n_drives);

    let stages: [(&str, f64); 7] = [
        ("fleet_gen", fleet_ms),
        ("prepare", prepare_ms),
        ("rf_fit_binned", rf_binned_ms),
        ("rf_fit_exact", rf_exact_ms),
        ("gbdt_fit_binned", gbdt_binned_ms),
        ("gbdt_fit_exact", gbdt_exact_ms),
        ("score_fleet", score_ms),
    ];
    println!("  [{label}] drives={n_drives} samples={n_samples} threads={threads}");
    for (stage, wall_ms) in stages {
        println!("    {stage:<16} {wall_ms:>10.1} ms");
        rows.push(StageRow {
            stage: format!("{label}/{stage}"),
            n_drives,
            n_samples,
            wall_ms,
            threads,
        });
    }
    (gbdt_binned_ms, gbdt_exact_ms)
}

/// Perf: stage-by-stage wall-clock trajectory, binned vs exact.
pub fn perf(ctx: &Ctx) -> serde_json::Value {
    section("Perf — stage trajectory, histogram vs exact split search");
    let seed = ctx.base().seed;
    let mut rows = Vec::new();

    // Two scales derived from the base seed: "small" matches the unit
    // test fixture, "medium" carries the headline speedup claim.
    let small = FleetConfig::tiny(seed);
    let medium = FleetConfig::tiny(seed)
        .with_population_fraction(0.008)
        .with_horizon_days(150);

    let (small_binned, small_exact) = bench_scale("small", &small, seed, &mut rows);
    let (medium_binned, medium_exact) = bench_scale("medium", &medium, seed, &mut rows);

    let small_speedup = small_exact / small_binned.max(1e-9);
    let medium_speedup = medium_exact / medium_binned.max(1e-9);
    println!("  GBDT fit speedup (exact / binned): small {small_speedup:.1}x, medium {medium_speedup:.1}x");

    let json_rows: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            json!({
                "stage": r.stage,
                "n_drives": r.n_drives,
                "n_samples": r.n_samples,
                "wall_ms": r.wall_ms,
                "threads": r.threads,
            })
        })
        .collect();
    // One JSON object per line, the same shape the `--json` flag emits.
    let payload: String = json_rows.iter().map(|r| format!("{r}\n")).collect();
    std::fs::write(OUT_PATH, payload).unwrap_or_else(|e| panic!("cannot write {OUT_PATH}: {e}"));
    println!("  wrote {OUT_PATH} ({} stage rows)", rows.len());

    json!({
        "out_path": OUT_PATH,
        "gbdt_speedup_small": small_speedup,
        "gbdt_speedup_medium": medium_speedup,
        "rows": json_rows,
    })
}
