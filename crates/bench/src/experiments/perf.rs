//! Perf trajectory: wall-clock of every pipeline stage at two fleet
//! scales, centred on the histogram-vs-exact split-search comparison
//! this optimisation is judged by.
//!
//! Each scale regenerates a fleet, then times: fleet generation,
//! `prepare` (sanitize + windowing + features), Random Forest and GBDT
//! fits with the default histogram path (`max_bins` = 256) and with the
//! exact re-sorting path (`max_bins` = 0), and batched fleet scoring.
//! Results append to stdout as a table and are written machine-readable
//! to `BENCH_PR3.json`, one row per `{stage, n_drives, n_samples,
//! wall_ms, threads}`.

use std::time::Instant;

use mfpa_core::deploy::score_fleet;
use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};
use mfpa_ml::{Classifier, Gbdt, RandomForest};
use mfpa_par::Workers;
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::section;

/// Output path for the machine-readable trajectory.
const OUT_PATH: &str = "BENCH_PR3.json";

/// Output path for the compiled-inference comparison (PR 8): the
/// interpreted `score_fleet` baseline vs the compiled engine, plus
/// compile time and `.mfpac` artifact size.
const OUT_PATH_PR8: &str = "BENCH_PR8.json";

/// One timed stage at one fleet scale.
struct StageRow {
    stage: String,
    n_drives: usize,
    n_samples: usize,
    wall_ms: f64,
    threads: usize,
}

/// Times all stages at one fleet scale, pushing rows and returning the
/// `(binned, exact)` GBDT fit times for the speedup summary.
fn bench_scale(
    label: &str,
    cfg: &FleetConfig,
    seed: u64,
    rows: &mut Vec<StageRow>,
    pr8: &mut Vec<serde_json::Value>,
) -> (f64, f64) {
    let threads = Workers::auto().get();
    println!("  [{label}] generating fleet…");
    let t0 = Instant::now();
    let fleet = SimulatedFleet::generate(cfg);
    let fleet_ms = t0.elapsed().as_secs_f64() * 1e3;
    let n_drives = fleet.drives().len();

    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::Gbdt).with_seed(seed));
    let t1 = Instant::now();
    let prepared = mfpa.prepare(&fleet).expect("prepare");
    let prepare_ms = t1.elapsed().as_secs_f64() * 1e3;
    let n_samples = prepared.n_rows();

    let x = prepared.samples().flat.matrix();
    let y = prepared.samples().flat.labels();

    // Model fits on the full prepared matrix with the pipeline's default
    // hyperparameters, binned (default) vs exact (`max_bins` = 0).
    let time_fit = |model: &mut dyn Classifier| -> f64 {
        let t = Instant::now();
        model.fit(x, y).expect("fit");
        t.elapsed().as_secs_f64() * 1e3
    };
    let rf_binned_ms = time_fit(&mut RandomForest::new(120, 12).with_seed(seed));
    let rf_exact_ms = time_fit(&mut RandomForest::new(120, 12).with_seed(seed).with_max_bins(0));
    let gbdt_binned_ms = time_fit(&mut Gbdt::new(150, 0.1, 3).with_subsample(0.8).with_seed(seed));
    let gbdt_exact_ms = time_fit(
        &mut Gbdt::new(150, 0.1, 3)
            .with_subsample(0.8)
            .with_seed(seed)
            .with_max_bins(0),
    );

    // Batched deployment scoring with the trained default model:
    // interpreted baseline first, then the compiled engine (PR 8) over
    // the identical fleet. The compiled probabilities must match the
    // interpreted ones bit for bit — the bench doubles as a check.
    let all: Vec<usize> = (0..n_samples).collect();
    let mut trained = mfpa.train_rows(&prepared, &all).expect("train");
    let t2 = Instant::now();
    let scores = score_fleet(fleet.drives(), &trained, 0).expect("score_fleet");
    let score_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert_eq!(scores.len(), n_drives);

    let t3 = Instant::now();
    assert!(trained.compile(), "tree ensembles must compile");
    let compile_ms = t3.elapsed().as_secs_f64() * 1e3;
    let artifact_bytes = trained.compiled_artifact().map_or(0, |b| b.len());
    let t4 = Instant::now();
    let compiled_scores = score_fleet(fleet.drives(), &trained, 0).expect("score_fleet compiled");
    let compiled_ms = t4.elapsed().as_secs_f64() * 1e3;
    for (a, b) in scores.iter().zip(&compiled_scores) {
        assert_eq!(a.max_score.to_bits(), b.max_score.to_bits(), "{}", a.serial);
        assert_eq!(
            a.last_score.to_bits(),
            b.last_score.to_bits(),
            "{}",
            a.serial
        );
    }
    let speedup = score_ms / compiled_ms.max(1e-9);
    println!(
        "  [{label}] score_fleet interpreted {score_ms:.1} ms | compile {compile_ms:.2} ms \
         | compiled {compiled_ms:.1} ms | {speedup:.2}x | artifact {artifact_bytes} B"
    );
    for (stage, wall_ms) in [
        ("score_fleet_interpreted", score_ms),
        ("score_fleet_compiled", compiled_ms),
        ("compile", compile_ms),
    ] {
        pr8.push(json!({
            "stage": format!("{label}/{stage}"),
            "n_drives": n_drives,
            "n_samples": n_samples,
            "wall_ms": wall_ms,
            "threads": threads,
            "artifact_bytes": artifact_bytes,
        }));
    }

    let stages: [(&str, f64); 7] = [
        ("fleet_gen", fleet_ms),
        ("prepare", prepare_ms),
        ("rf_fit_binned", rf_binned_ms),
        ("rf_fit_exact", rf_exact_ms),
        ("gbdt_fit_binned", gbdt_binned_ms),
        ("gbdt_fit_exact", gbdt_exact_ms),
        ("score_fleet", score_ms),
    ];
    println!("  [{label}] drives={n_drives} samples={n_samples} threads={threads}");
    for (stage, wall_ms) in stages {
        println!("    {stage:<16} {wall_ms:>10.1} ms");
        rows.push(StageRow {
            stage: format!("{label}/{stage}"),
            n_drives,
            n_samples,
            wall_ms,
            threads,
        });
    }
    (gbdt_binned_ms, gbdt_exact_ms)
}

/// Perf: stage-by-stage wall-clock trajectory, binned vs exact.
pub fn perf(ctx: &Ctx) -> serde_json::Value {
    section("Perf — stage trajectory, histogram vs exact split search");
    let seed = ctx.base().seed;
    let mut rows = Vec::new();

    // Two scales derived from the base seed: "small" matches the unit
    // test fixture, "medium" carries the headline speedup claim.
    let small = FleetConfig::tiny(seed);
    let medium = FleetConfig::tiny(seed)
        .with_population_fraction(0.008)
        .with_horizon_days(150);

    let mut pr8_rows = Vec::new();
    let (small_binned, small_exact) = bench_scale("small", &small, seed, &mut rows, &mut pr8_rows);
    let (medium_binned, medium_exact) =
        bench_scale("medium", &medium, seed, &mut rows, &mut pr8_rows);

    let small_speedup = small_exact / small_binned.max(1e-9);
    let medium_speedup = medium_exact / medium_binned.max(1e-9);
    println!("  GBDT fit speedup (exact / binned): small {small_speedup:.1}x, medium {medium_speedup:.1}x");

    let json_rows: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            json!({
                "stage": r.stage,
                "n_drives": r.n_drives,
                "n_samples": r.n_samples,
                "wall_ms": r.wall_ms,
                "threads": r.threads,
            })
        })
        .collect();
    // One JSON object per line, the same shape the `--json` flag emits.
    let payload: String = json_rows.iter().map(|r| format!("{r}\n")).collect();
    std::fs::write(OUT_PATH, payload).unwrap_or_else(|e| panic!("cannot write {OUT_PATH}: {e}"));
    println!("  wrote {OUT_PATH} ({} stage rows)", rows.len());

    let pr8_payload: String = pr8_rows.iter().map(|r| format!("{r}\n")).collect();
    std::fs::write(OUT_PATH_PR8, pr8_payload)
        .unwrap_or_else(|e| panic!("cannot write {OUT_PATH_PR8}: {e}"));
    println!("  wrote {OUT_PATH_PR8} ({} stage rows)", pr8_rows.len());

    let compiled_speedup = |scale: &str| -> f64 {
        let ms = |stage: &str| {
            pr8_rows
                .iter()
                .find(|r| r["stage"].as_str() == Some(&format!("{scale}/{stage}")))
                .and_then(|r| r["wall_ms"].as_f64())
                .unwrap_or(f64::NAN)
        };
        ms("score_fleet_interpreted") / ms("score_fleet_compiled").max(1e-9)
    };

    json!({
        "out_path": OUT_PATH,
        "out_path_pr8": OUT_PATH_PR8,
        "gbdt_speedup_small": small_speedup,
        "gbdt_speedup_medium": medium_speedup,
        "compiled_speedup_small": compiled_speedup("small"),
        "compiled_speedup_medium": compiled_speedup("medium"),
        "rows": json_rows,
        "pr8_rows": pr8_rows,
    })
}
