//! Robustness study: how gracefully MFPA degrades when the telemetry
//! collection path corrupts records, with and without the sanitization
//! stage ahead of preprocessing.
//!
//! Each corruption level regenerates the fleet with the fault injector
//! enabled at a uniform per-fault rate (sentinel resets, stuck
//! attributes, counter rollovers, duplicates, out-of-order arrivals,
//! missing attributes, clock skew — see `mfpa_fleetsim::faults`), then
//! trains the reference SFWB+RF model twice: once trusting the
//! collector's view (`sanitize: None`) and once over the sanitized raw
//! emission stream.

use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FaultConfig, SimulatedFleet};
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::{metric_row, report_json, section};

/// Uniform per-fault corruption rates swept by the study.
const RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

/// Robustness: TPR/FPR degradation under fault injection, sanitize
/// on vs off.
pub fn robustness(ctx: &Ctx) -> serde_json::Value {
    section("Robustness — fault injection × sanitization");
    let mut rows = Vec::new();
    for rate in RATES {
        let config = ctx.base().clone().with_faults(FaultConfig::uniform(rate));
        let fleet = SimulatedFleet::generate(&config);
        let injected = fleet.injected_faults().total();
        println!(
            "  fault rate {:>5.1}% (injected faults: {injected})",
            rate * 100.0
        );

        let base = MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest);
        let mut row = serde_json::Map::new();
        row.insert("rate".into(), json!(rate));
        row.insert("injected_faults".into(), json!(injected));
        for (label, cfg) in [
            ("sanitize off", base.clone().with_sanitize(None)),
            ("sanitize on", base),
        ] {
            let key = label.replace(' ', "_");
            match Mfpa::new(cfg).run(&fleet) {
                Ok(r) => {
                    let extra = if r.timings.n_quarantined + r.timings.n_repaired > 0 {
                        format!(
                            " | quarantined={} repaired={}",
                            r.timings.n_quarantined, r.timings.n_repaired
                        )
                    } else {
                        String::new()
                    };
                    println!("    {}{extra}", metric_row(label, &r));
                    row.insert(
                        key,
                        json!({
                            "report": report_json(&r),
                            "n_quarantined": r.timings.n_quarantined,
                            "n_repaired": r.timings.n_repaired,
                        }),
                    );
                }
                Err(e) => {
                    println!("    {label:<28} error: {e}");
                    row.insert(key, json!({ "error": e.to_string() }));
                }
            }
        }
        rows.push(serde_json::Value::Object(row));
    }
    println!("  note: at 0% corruption the two pipelines are bit-identical; under");
    println!("  corruption the sanitizer quarantines or repairs the injected faults");
    println!("  instead of letting them reach the feature rows.");
    json!({ "rows": rows })
}
