//! Figs 4–5: cumulative Windows-event / BSOD trajectories of healthy vs
//! faulty drives — the paper's visual argument that W/B are early
//! failure signals.

use mfpa_fleetsim::{SimulatedDrive, SimulatedFleet};
use mfpa_telemetry::{BsodCode, WindowsEventId};
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::section;

/// Picks `n` faulty and `n` healthy drives with reasonably long
/// histories, deterministically.
fn pick_drives(fleet: &SimulatedFleet, n: usize) -> (Vec<&SimulatedDrive>, Vec<&SimulatedDrive>) {
    let mut faulty: Vec<&SimulatedDrive> = fleet
        .drives()
        .iter()
        .filter(|d| d.truth().is_some() && d.history().len() >= 20)
        .collect();
    // Prefer drives with the most pre-failure data (clearest curves).
    faulty.sort_by_key(|d| std::cmp::Reverse(d.history().len()));
    let healthy: Vec<&SimulatedDrive> = fleet
        .drives()
        .iter()
        .filter(|d| d.truth().is_none() && d.history().len() >= 20)
        .take(n)
        .collect();
    (faulty.into_iter().take(n).collect(), healthy)
}

fn cumulative_curves(
    ctx: &Ctx,
    title: &str,
    metric_name: &str,
    extract: impl Fn(&SimulatedDrive) -> Vec<(i64, u64)>,
) -> serde_json::Value {
    let fleet = ctx.fleet();
    section(title);
    let (faulty, healthy) = pick_drives(fleet, 4);
    let mut rows = Vec::new();
    let mut print_drive = |label: String, d: &SimulatedDrive| {
        let curve = extract(d);
        let last = curve.last().map_or(0, |&(_, v)| v);
        // Sample ~8 evenly spaced points for the printed curve.
        let step = (curve.len() / 8).max(1);
        let samples: Vec<(i64, u64)> = curve.iter().step_by(step).cloned().collect();
        println!("  {label:<4} final {metric_name}={last:<5} curve {samples:?}");
        rows.push(json!({ "drive": label, "final": last, "curve": curve }));
        last
    };
    let mut faulty_finals = Vec::new();
    for (i, d) in faulty.iter().enumerate() {
        faulty_finals.push(print_drive(format!("F{}", i + 1), d));
    }
    let mut healthy_finals = Vec::new();
    for (i, d) in healthy.iter().enumerate() {
        healthy_finals.push(print_drive(format!("N{}", i + 1), d));
    }
    let f_mean = faulty_finals.iter().sum::<u64>() as f64 / faulty_finals.len().max(1) as f64;
    let n_mean = healthy_finals.iter().sum::<u64>() as f64 / healthy_finals.len().max(1) as f64;
    println!(
        "  mean final count: faulty {f_mean:.1} vs healthy {n_mean:.1} (paper: faulty ≫ healthy)"
    );
    json!({ "rows": rows, "faulty_mean_final": f_mean, "healthy_mean_final": n_mean })
}

/// Fig 4: cumulative `W_161` before failure, faulty (F1–F4) vs healthy
/// (N1–N4).
pub fn fig4(ctx: &Ctx) -> serde_json::Value {
    cumulative_curves(
        ctx,
        "Fig 4 — cumulative W_161 (file-system error during IO)",
        "W_161",
        |d| {
            d.history()
                .cumulative_w(WindowsEventId::W161)
                .into_iter()
                .map(|(day, v)| (day.day(), v))
                .collect()
        },
    )
}

/// Fig 5: cumulative `B_50` (PAGE_FAULT_IN_NONPAGED_AREA) before failure.
pub fn fig5(ctx: &Ctx) -> serde_json::Value {
    cumulative_curves(
        ctx,
        "Fig 5 — cumulative B_50 (PAGE_FAULT_IN_NONPAGED_AREA)",
        "B_50",
        |d| {
            d.history()
                .cumulative_b(BsodCode::B0x50)
                .into_iter()
                .map(|(day, v)| (day.day(), v))
                .collect()
        },
    )
}
