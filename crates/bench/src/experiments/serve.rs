//! Serve: the fleet-monitor serving harness.
//!
//! Replays the simulated fleet's telemetry as arrival-ordered traffic
//! (with transport faults: batch truncation + shard-targeted burst
//! loss) through a checkpointing [`FleetMonitor`], then proves the
//! fault-tolerance story end to end:
//!
//! 1. **Uninterrupted run** — sustained records/sec, p99 per-batch
//!    latency, sweep/checkpoint accounting, and the conservation
//!    invariant on every shard.
//! 2. **Kill and restore** — a second monitor is killed 3/5 of the way
//!    through, restored from its newest checkpoint, and replayed to the
//!    end; its final scores, quarantine set and counters must be
//!    **bit-identical** to the uninterrupted run.
//! 3. **Corrupted checkpoint** — one bit of the newest checkpoint is
//!    flipped; the restore path must refuse it.
//!
//! A handful of synthetic poison drives (sentinel SMART pages every
//! batch) is injected on top of the simulated corruption so the
//! quarantine ladder is exercised deterministically at any scale.
//! Results are printed and written machine-readably to
//! `BENCH_PR6.json`, one JSON object per line.

use std::path::Path;
use std::time::Instant;

use mfpa_core::checkpoint::latest_checkpoint;
use mfpa_core::fleet_monitor::{
    CheckpointOutcome, FleetMonitor, FleetMonitorConfig, FleetScore, QuarantineInfo, ShardReport,
    SweepOutcome,
};
use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig, TrainedMfpa};
use mfpa_fleetsim::replay::{arrival_stream, flip_one_byte, into_batches, TransportFaultConfig};
use mfpa_fleetsim::{ArrivalEvent, FaultConfig, SimulatedFleet};
use mfpa_telemetry::{
    DailyRecord, DayStamp, FirmwareVersion, SerialNumber, SmartAttr, SmartValues, Vendor,
};
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::section;

/// Output path for the machine-readable serve benchmark.
const OUT_PATH: &str = "BENCH_PR6.json";
/// Records per ingestion batch.
const BATCH_SIZE: usize = 2048;
/// Monitor shards (also the transport burst-loss target space).
const N_SHARDS: usize = 8;
/// Checkpoint every this many batches.
const CHECKPOINT_INTERVAL: u64 = 8;
/// Scoring sweep every this many batches.
const SWEEP_INTERVAL: u64 = 16;
/// Synthetic poison drives injected per batch.
const N_POISON: u64 = 4;
/// Serial-id offset that keeps poison drives disjoint from the fleet.
const POISON_ID_BASE: u64 = 9_000_000_000;

fn monitor_config(dir: &Path, checkpoint_interval: u64, sweep_interval: u64) -> FleetMonitorConfig {
    FleetMonitorConfig::default()
        .with_shards(N_SHARDS)
        .with_checkpointing(dir, checkpoint_interval)
        .with_sweep_interval(sweep_interval)
}

/// A sentinel-page record from poison drive `p` at batch `tick`.
fn poison_event(p: u64, tick: usize) -> ArrivalEvent {
    let mut smart = SmartValues::default();
    for attr in SmartAttr::ALL {
        smart.set(attr, u64::MAX as f64);
    }
    ArrivalEvent {
        serial: SerialNumber::new(Vendor::I, POISON_ID_BASE + p),
        record: DailyRecord {
            day: DayStamp::new(tick as i64),
            smart,
            firmware: FirmwareVersion::new(Vendor::I, 1),
            w_counts: [0; 9],
            b_counts: [0; 23],
        },
    }
}

/// Accounting from one serve run.
struct RunStats {
    latencies_ms: Vec<f64>,
    sweeps_scored: u64,
    sweeps_shed_outcomes: u64,
    checkpoints_written: u64,
    checkpoints_failed: u64,
}

/// Ingests `batches[from..]`, recording per-batch latency and outcome
/// counts.
fn run_batches(
    fm: &mut FleetMonitor,
    batches: &[Vec<ArrivalEvent>],
    from: usize,
    trained: &TrainedMfpa,
    stats: &mut RunStats,
) {
    for batch in &batches[from..] {
        let t = Instant::now();
        let out = fm.ingest_batch(batch, Some(trained)).expect("ingest_batch");
        stats.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        match out.sweep {
            SweepOutcome::Scores(_) => stats.sweeps_scored += 1,
            SweepOutcome::Shed => stats.sweeps_shed_outcomes += 1,
            SweepOutcome::NotDue => {}
        }
        match out.checkpoint {
            CheckpointOutcome::Written { .. } => stats.checkpoints_written += 1,
            CheckpointOutcome::Failed { .. } => stats.checkpoints_failed += 1,
            CheckpointOutcome::NotDue => {}
        }
    }
}

/// Finishes a run: drains reorder windows, checks conservation on every
/// shard, and returns `(final scores, quarantine set, fleet report)`.
fn finish(
    fm: &mut FleetMonitor,
    trained: &TrainedMfpa,
) -> (
    Vec<FleetScore>,
    Vec<(SerialNumber, QuarantineInfo)>,
    ShardReport,
) {
    fm.drain();
    for (ix, report) in fm.shard_reports().iter().enumerate() {
        assert!(
            report.is_conserved(),
            "shard {ix} leaked records: {report:?}"
        );
        assert_eq!(report.pending, 0, "shard {ix} still pending after drain");
    }
    let scores = fm.sweep_now(trained).expect("final sweep");
    (scores, fm.quarantined(), fm.fleet_report())
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let ix = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[ix.min(sorted.len() - 1)]
}

/// Serve: sharded online ingestion with crash-safe recovery.
pub fn serve(ctx: &Ctx) -> serde_json::Value {
    section("Serve — fleet monitor under arrival-ordered replay with faults");
    let seed = ctx.base().seed;

    // The serving path must be exercised against a corrupted stream: if
    // the base config is clean, force the robustness experiment's 2%
    // uniform per-drive corruption.
    let mut fleet_cfg = ctx.base().clone();
    if !fleet_cfg.faults.is_enabled() {
        fleet_cfg = fleet_cfg.with_faults(FaultConfig::uniform(0.02));
    }
    println!("  generating fleet (faults on)…");
    let fleet = SimulatedFleet::generate(&fleet_cfg);
    println!(
        "  drives={} failures={}",
        fleet.drives().len(),
        fleet.failures().len()
    );

    let mfpa =
        Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest).with_seed(seed));
    let prepared = mfpa.prepare(&fleet).expect("prepare");
    let all: Vec<usize> = (0..prepared.n_rows()).collect();
    let trained = mfpa.train_rows(&prepared, &all).expect("train");

    // Arrival-ordered traffic with transport faults, plus deterministic
    // poison drives so the quarantine ladder always engages.
    let stream = arrival_stream(&fleet);
    let n_emitted = stream.len();
    let transport_cfg = TransportFaultConfig {
        batch_truncation_rate: 0.02,
        burst_loss_rate: 0.01,
        burst_len: 3,
        n_shards: N_SHARDS,
    };
    let (bare_batches, transport) = into_batches(stream, BATCH_SIZE, &transport_cfg, seed);
    let batches: Vec<Vec<ArrivalEvent>> = bare_batches
        .into_iter()
        .enumerate()
        .map(|(tick, mut batch)| {
            for p in 0..N_POISON {
                batch.push(poison_event(p, tick));
            }
            batch
        })
        .collect();
    let n_batches = batches.len();
    // At reduced CLI scales there may be only a handful of batches;
    // shrink the intervals so a checkpoint always lands before the kill
    // point and at least one in-stream sweep runs.
    let checkpoint_interval = CHECKPOINT_INTERVAL.min((n_batches as u64 / 4).max(1));
    let sweep_interval = SWEEP_INTERVAL.min((n_batches as u64 / 2).max(1));
    println!(
        "  {} arrival events -> {} batches of {} (+{} poison records/batch); transport dropped {} (truncation {} / burst {})",
        n_emitted,
        n_batches,
        BATCH_SIZE,
        N_POISON,
        transport.truncated_records + transport.burst_dropped,
        transport.truncated_records,
        transport.burst_dropped
    );

    let root = std::env::temp_dir().join(format!("mfpa-serve-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir_a = root.join("uninterrupted");
    let dir_b = root.join("killed");

    // ---- Run A: uninterrupted ----------------------------------------
    let mut stats_a = RunStats {
        latencies_ms: Vec::with_capacity(n_batches),
        sweeps_scored: 0,
        sweeps_shed_outcomes: 0,
        checkpoints_written: 0,
        checkpoints_failed: 0,
    };
    let mut fm_a = FleetMonitor::new(monitor_config(&dir_a, checkpoint_interval, sweep_interval))
        .expect("config");
    let t_ingest = Instant::now();
    run_batches(&mut fm_a, &batches, 0, &trained, &mut stats_a);
    let ingest_secs = t_ingest.elapsed().as_secs_f64();
    let (scores_a, quarantined_a, report_a) = finish(&mut fm_a, &trained);

    let records_per_sec = report_a.received as f64 / ingest_secs.max(1e-9);
    let mut sorted = stats_a.latencies_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let p50_ms = percentile_ms(&sorted, 0.50);
    let p99_ms = percentile_ms(&sorted, 0.99);
    println!(
        "  uninterrupted: {:.0} records/s, batch p50 {:.2} ms p99 {:.2} ms",
        records_per_sec, p50_ms, p99_ms
    );
    println!(
        "  accounting: accepted={} corrupt={} late={} shed={} quarantined_drops={} quarantines={} readmissions={}",
        report_a.accepted,
        report_a.rejected_corrupt,
        report_a.rejected_late,
        report_a.shed_overflow,
        report_a.dropped_quarantined,
        report_a.quarantines,
        report_a.readmissions
    );

    // The poison drives must all be in quarantine at end of stream.
    let quarantined_serials: Vec<SerialNumber> =
        quarantined_a.iter().map(|(serial, _)| *serial).collect();
    for p in 0..N_POISON {
        let serial = SerialNumber::new(Vendor::I, POISON_ID_BASE + p);
        assert!(
            quarantined_serials.contains(&serial),
            "poison drive {serial} escaped quarantine"
        );
    }
    assert!(
        report_a.rejected_corrupt > 0,
        "corrupted stream produced no rejections"
    );

    // ---- Run B: kill at 3/5, restore from checkpoint, replay ---------
    let kill_at = (n_batches * 3) / 5;
    let mut stats_b = RunStats {
        latencies_ms: Vec::new(),
        sweeps_scored: 0,
        sweeps_shed_outcomes: 0,
        checkpoints_written: 0,
        checkpoints_failed: 0,
    };
    {
        let mut fm_b =
            FleetMonitor::new(monitor_config(&dir_b, checkpoint_interval, sweep_interval))
                .expect("config");
        for batch in &batches[..kill_at] {
            fm_b.ingest_batch(batch, Some(&trained))
                .expect("ingest_batch");
        }
        // fm_b dropped here: the "crash". Only the checkpoints survive.
    }
    let t_recover = Instant::now();
    let mut fm_b =
        FleetMonitor::restore_latest(monitor_config(&dir_b, checkpoint_interval, sweep_interval))
            .expect("restore_latest")
            .expect("a checkpoint must exist at the kill point");
    let recovery_ms = t_recover.elapsed().as_secs_f64() * 1e3;
    let resumed_tick = fm_b.tick();
    assert!(resumed_tick as usize <= kill_at);
    run_batches(
        &mut fm_b,
        &batches,
        resumed_tick as usize,
        &trained,
        &mut stats_b,
    );
    let (scores_b, quarantined_b, report_b) = finish(&mut fm_b, &trained);

    // Recovery must be bit-identical to the uninterrupted run.
    assert_eq!(scores_a.len(), scores_b.len(), "score table size diverged");
    for (a, b) in scores_a.iter().zip(&scores_b) {
        assert_eq!(a.serial, b.serial, "score table order diverged");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "score diverged for {}",
            a.serial
        );
    }
    assert_eq!(quarantined_a, quarantined_b, "quarantine set diverged");
    assert_eq!(report_a, report_b, "fleet accounting diverged");
    println!(
        "  kill@batch {kill_at} -> restored tick {resumed_tick} in {recovery_ms:.2} ms; replay is bit-identical ({} scores, {} quarantined)",
        scores_a.len(),
        quarantined_a.len()
    );

    // ---- Corrupted checkpoint must be refused ------------------------
    let ckpt = latest_checkpoint(&dir_b)
        .expect("list checkpoints")
        .expect("checkpoint present");
    let mut damaged = std::fs::read(&ckpt).expect("read checkpoint");
    flip_one_byte(&mut damaged, seed ^ 0xBADC_0FFE).expect("flip");
    std::fs::write(&ckpt, &damaged).expect("write damaged checkpoint");
    let rejected = matches!(
        FleetMonitor::restore_latest(monitor_config(&dir_b, checkpoint_interval, sweep_interval)),
        Err(mfpa_core::CoreError::CheckpointCorrupt { .. })
    );
    assert!(rejected, "a bit-flipped checkpoint was accepted");
    println!("  bit-flipped checkpoint refused with CheckpointCorrupt");

    let _ = std::fs::remove_dir_all(&root);

    let rows = vec![
        json!({"metric": "sustained_records_per_sec", "value": records_per_sec}),
        json!({"metric": "batch_latency_p50_ms", "value": p50_ms}),
        json!({"metric": "batch_latency_p99_ms", "value": p99_ms}),
        json!({"metric": "recovery_ms", "value": recovery_ms}),
        json!({"metric": "batches", "value": n_batches}),
        json!({"metric": "batch_size", "value": BATCH_SIZE}),
        json!({"metric": "n_shards", "value": N_SHARDS}),
        json!({"metric": "records_received", "value": report_a.received}),
        json!({"metric": "records_accepted", "value": report_a.accepted}),
        json!({"metric": "rejected_corrupt", "value": report_a.rejected_corrupt}),
        json!({"metric": "rejected_late", "value": report_a.rejected_late}),
        json!({"metric": "shed_overflow", "value": report_a.shed_overflow}),
        json!({"metric": "dropped_quarantined", "value": report_a.dropped_quarantined}),
        json!({"metric": "quarantines", "value": report_a.quarantines}),
        json!({"metric": "readmissions", "value": report_a.readmissions}),
        json!({"metric": "drives_quarantined_final", "value": quarantined_a.len()}),
        json!({"metric": "transport_truncated_records", "value": transport.truncated_records}),
        json!({"metric": "transport_burst_dropped", "value": transport.burst_dropped}),
        json!({"metric": "sweeps_scored", "value": stats_a.sweeps_scored}),
        json!({"metric": "sweeps_shed", "value": stats_a.sweeps_shed_outcomes}),
        json!({"metric": "checkpoints_written", "value": stats_a.checkpoints_written}),
        json!({"metric": "checkpoints_failed", "value": stats_a.checkpoints_failed}),
        json!({"metric": "kill_at_batch", "value": kill_at}),
        json!({"metric": "resumed_tick", "value": resumed_tick}),
        json!({"metric": "recovery_bit_identical", "value": true}),
        json!({"metric": "corrupt_checkpoint_rejected", "value": rejected}),
    ];
    let payload: String = rows.iter().map(|r| format!("{r}\n")).collect();
    std::fs::write(OUT_PATH, payload).unwrap_or_else(|e| panic!("cannot write {OUT_PATH}: {e}"));
    println!("  wrote {OUT_PATH} ({} metric rows)", rows.len());

    json!({
        "out_path": OUT_PATH,
        "sustained_records_per_sec": records_per_sec,
        "batch_latency_p99_ms": p99_ms,
        "recovery_ms": recovery_ms,
        "recovery_bit_identical": true,
        "corrupt_checkpoint_rejected": rejected,
        "quarantined": quarantined_a.len(),
        "rows": rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_events_are_disjoint_from_fleet_serials_and_corrupt() {
        let ev = poison_event(0, 3);
        assert_eq!(ev.record.day, DayStamp::new(3));
        assert!(ev.serial.id() >= POISON_ID_BASE);
        // A sentinel page: every attribute pegged at the sentinel value.
        assert!(ev.record.smart.as_slice().iter().all(|&v| v >= 4.0e9));
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile_ms(&[], 0.99), 0.0);
        assert_eq!(percentile_ms(&[5.0], 0.5), 5.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_ms(&v, 0.0), 1.0);
        assert_eq!(percentile_ms(&v, 1.0), 4.0);
    }
}
