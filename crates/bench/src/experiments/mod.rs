//! The experiment registry: one entry per paper table/figure plus the
//! ablations DESIGN.md calls out.

mod ablations;
mod dataset_exps;
mod defs;
mod model_exps;
mod perf;
mod precursors;
mod robustness;
mod scale;
mod serve;
mod tune;

use crate::ctx::Ctx;

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// CLI id (`repro <id>`).
    pub id: &'static str,
    /// Human-readable title (paper artefact it reproduces).
    pub title: &'static str,
    /// Entry point; returns the machine-readable result.
    pub run: fn(&Ctx) -> serde_json::Value,
}

/// Every registered experiment, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table I: RaSRF failure taxonomy",
            run: dataset_exps::table1,
        },
        Experiment {
            id: "table2",
            title: "Table II: SMART attributes",
            run: defs::table2,
        },
        Experiment {
            id: "table3",
            title: "Table III: WindowsEvent logs",
            run: defs::table3,
        },
        Experiment {
            id: "table4",
            title: "Table IV: BlueScreenOfDeath logs",
            run: defs::table4,
        },
        Experiment {
            id: "table5",
            title: "Table V: feature groups",
            run: defs::table5,
        },
        Experiment {
            id: "table6",
            title: "Table VI: dataset populations and replacement rates",
            run: dataset_exps::table6,
        },
        Experiment {
            id: "fig2",
            title: "Fig 2: failure distribution over power-on hours (bathtub)",
            run: dataset_exps::fig2,
        },
        Experiment {
            id: "fig3",
            title: "Fig 3: failure rate per firmware version",
            run: dataset_exps::fig3,
        },
        Experiment {
            id: "fig4",
            title: "Fig 4: cumulative W_161 for healthy vs faulty drives",
            run: precursors::fig4,
        },
        Experiment {
            id: "fig5",
            title: "Fig 5: cumulative B_50 for healthy vs faulty drives",
            run: precursors::fig5,
        },
        Experiment {
            id: "fig6",
            title: "Fig 6: telemetry discontinuity of faulty drives",
            run: dataset_exps::fig6,
        },
        Experiment {
            id: "fig7",
            title: "Fig 7 / §III-C(2): θ sensitivity of failure-time labelling",
            run: model_exps::fig7,
        },
        Experiment {
            id: "fig8",
            title: "Fig 8: timepoint split + time-series CV vs naive variants",
            run: model_exps::fig8,
        },
        Experiment {
            id: "fig9",
            title: "Fig 9/13: feature-group comparison",
            run: model_exps::fig9,
        },
        Experiment {
            id: "fig10",
            title: "Fig 10/14: algorithm portability",
            run: model_exps::fig10,
        },
        Experiment {
            id: "fig11",
            title: "Fig 11/15: vendor portability",
            run: model_exps::fig11,
        },
        Experiment {
            id: "fig12",
            title: "Fig 12/16: temporal stability without retraining",
            run: model_exps::fig12,
        },
        Experiment {
            id: "fig17",
            title: "Fig 17: sequential forward selection",
            run: model_exps::fig17,
        },
        Experiment {
            id: "fig18",
            title: "Fig 18: MFPA vs state-of-the-art baselines",
            run: model_exps::fig18,
        },
        Experiment {
            id: "fig19",
            title: "Fig 19: lookahead-window sweep",
            run: model_exps::fig19,
        },
        Experiment {
            id: "fig20",
            title: "Fig 20: per-stage overhead",
            run: model_exps::fig20,
        },
        Experiment {
            id: "tune",
            title: "§III-C(4): grid search with time-series CV",
            run: tune::tune,
        },
        Experiment {
            id: "ablate-gaps",
            title: "Ablation: gap-drop / gap-fill constants",
            run: ablations::ablate_gaps,
        },
        Experiment {
            id: "ablate-cumsum",
            title: "Ablation: cumulative vs daily W/B counters",
            run: ablations::ablate_cumsum,
        },
        Experiment {
            id: "ablate-ratio",
            title: "Ablation: under-sampling ratio",
            run: ablations::ablate_ratio,
        },
        Experiment {
            id: "ablate-window",
            title: "Ablation: positive-window length",
            run: ablations::ablate_window,
        },
        Experiment {
            id: "robustness",
            title: "Robustness: fault injection × sanitization",
            run: robustness::robustness,
        },
        Experiment {
            id: "scale",
            title: "Scale: deterministic parallel speedup (MFPA_THREADS)",
            run: scale::scale,
        },
        Experiment {
            id: "perf",
            title: "Perf: stage trajectory, histogram vs exact split search",
            run: perf::perf,
        },
        Experiment {
            id: "serve",
            title: "Serve: sharded fleet monitor, transport faults, crash recovery",
            run: serve::serve,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_unique() {
        let mut ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all_experiments().len());
    }

    #[test]
    fn covers_every_paper_artifact() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for required in [
            "table1", "table2", "table3", "table4", "table5", "table6", "fig2", "fig3", "fig4",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig17", "fig18",
            "fig19", "fig20",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }
}
