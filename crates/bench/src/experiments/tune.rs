//! §III-C(4): grid search combined with time-series cross-validation.

use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_dataset::cv::time_series_cv;
use mfpa_ml::grid::{grid_search, ParamGrid};
use mfpa_ml::RandomForest;
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::section;

/// Runs an RF hyperparameter grid with time-series CV on the training
/// window, then reports the winning configuration.
pub fn tune(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Grid search — RF hyperparameters under time-series CV");
    let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
    let prepared = mfpa.prepare(fleet).expect("prepare");
    let frame = &prepared.samples().flat;
    let sel = FeatureGroup::Sfwb.full_indices();

    // Tune inside the learning window only (no future leakage), on
    // 3:1-balanced rows (what the pipeline trains on anyway).
    let train_split =
        mfpa_dataset::split::timepoint_split_fraction(&frame.times(), 0.7).expect("split");
    let train = frame.select_rows(&train_split.train);
    let kept = mfpa_dataset::RandomUnderSampler::new(3.0, 11)
        .expect("ratio")
        .sample(train.labels());
    let sub = train.select_rows(&kept).select_cols(&sel);
    let y = sub.labels().to_vec();
    let folds = time_series_cv(&sub.times(), 2).expect("folds");

    // `max_bins` 0 = the exact re-sorting split search, 256 = the
    // default histogram path; tuning over both doubles as a CV-level
    // check that binning does not cost accuracy.
    let grid = ParamGrid::new()
        .add("n_trees", &[40.0, 80.0, 120.0])
        .add("max_depth", &[6.0, 10.0, 14.0])
        .add("max_bins", &[0.0, 256.0]);
    let result = grid_search(&grid, &folds, sub.matrix(), &y, |p| {
        Box::new(
            RandomForest::new(p["n_trees"] as usize, p["max_depth"] as usize)
                .with_seed(13)
                .with_max_bins(p["max_bins"] as usize),
        )
    })
    .expect("grid search");

    for t in &result.trials {
        println!(
            "  n_trees={:<4} max_depth={:<3} max_bins={:<4} mean AUC={:.4}",
            t.params["n_trees"], t.params["max_depth"], t.params["max_bins"], t.mean_auc
        );
    }
    println!(
        "  best: n_trees={} max_depth={} max_bins={} (AUC {:.4})",
        result.best_params["n_trees"],
        result.best_params["max_depth"],
        result.best_params["max_bins"],
        result.best_auc
    );
    json!({
        "best": result.best_params,
        "best_auc": result.best_auc,
        "trials": result.trials.iter()
            .map(|t| json!({ "params": t.params, "auc": t.mean_auc }))
            .collect::<Vec<_>>(),
    })
}
