//! Dataset-level reproductions: the RaSRF taxonomy (Table I), the fleet
//! summary (Table VI), the bathtub curve (Fig 2), firmware failure rates
//! (Fig 3) and observation discontinuity (Fig 6).

use mfpa_telemetry::{FailureCause, FailureLevel, Vendor};
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::{bar, pct, section};

/// Table I: failure causes of the simulated ticket stream vs the paper.
pub fn table1(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Table I — RaSRF failure taxonomy (simulated vs paper)");
    let total = fleet.tickets().len() as f64;
    let mut rows = Vec::new();
    for cause in FailureCause::ALL {
        let n = fleet
            .tickets()
            .iter()
            .filter(|t| t.cause() == cause)
            .count();
        let measured = n as f64 / total * 100.0;
        println!(
            "  {:<13} {:<34} measured {:>6.2}%  paper {:>6.2}%",
            cause.level().to_string(),
            cause.description(),
            measured,
            cause.paper_percentage()
        );
        rows.push(json!({
            "cause": cause.description(),
            "level": cause.level().to_string(),
            "measured_pct": measured,
            "paper_pct": cause.paper_percentage(),
        }));
    }
    let drive_pct = fleet
        .tickets()
        .iter()
        .filter(|t| t.cause().level() == FailureLevel::Drive)
        .count() as f64
        / total
        * 100.0;
    println!(
        "  drive-level total: measured {:.2}% vs paper 31.62% | system-level {:.2}% vs 68.38%",
        drive_pct,
        100.0 - drive_pct
    );
    json!({ "rows": rows, "drive_level_pct": drive_pct, "n_tickets": fleet.tickets().len() })
}

/// Table VI: populations, failures and replacement rates per vendor.
pub fn table6(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    let cfg = fleet.config();
    section("Table VI — dataset summary (simulated scale vs paper)");
    println!(
        "  scale: population_fraction={} hazard_boost={} horizon={}d (paper study ≈ {} d)",
        cfg.population_fraction,
        cfg.hazard_boost,
        cfg.horizon_days,
        mfpa_fleetsim::STUDY_DAYS as i64,
    );
    println!(
        "  {:<7} {:>10} {:>9} {:>12} {:>14} {:>12}",
        "vendor", "population", "failures", "measured_RR", "descaled_RR", "paper_RR"
    );
    let mut rows = Vec::new();
    for s in fleet.stats() {
        // Undo the boost and re-extrapolate to the paper's study length so
        // the number is directly comparable with Table VI.
        let descaled = s.replacement_rate() / cfg.hazard_boost
            * (mfpa_fleetsim::STUDY_DAYS / cfg.horizon_days as f64);
        println!(
            "  {:<7} {:>10} {:>9} {:>12.5} {:>14.5} {:>12.5}",
            s.vendor.to_string(),
            s.population,
            s.failures,
            s.replacement_rate(),
            descaled,
            s.vendor.paper_replacement_rate()
        );
        rows.push(json!({
            "vendor": s.vendor.to_string(),
            "population": s.population,
            "failures": s.failures,
            "measured_rr": s.replacement_rate(),
            "descaled_rr": descaled,
            "paper_rr": s.vendor.paper_replacement_rate(),
        }));
    }
    json!({ "rows": rows })
}

/// Fig 2: failure counts binned by power-on hours at failure.
pub fn fig2(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 2 — failure distribution over power-on hours (bathtub)");
    let poh: Vec<f64> = fleet.failures().iter().map(|f| f.poh_at_failure).collect();
    let max = poh.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    let bins = 12;
    let counts = mfpa_dataset::stats::histogram(&poh, 0.0, max, bins);
    let peak = *counts.iter().max().unwrap_or(&1) as f64;
    for (i, &c) in counts.iter().enumerate() {
        let lo = max / bins as f64 * i as f64;
        let hi = max / bins as f64 * (i + 1) as f64;
        println!(
            "  {:>6.0}-{:<6.0} h {:>5} {}",
            lo,
            hi,
            c,
            bar(c as f64, peak, 40)
        );
    }
    // Raw counts are blurred by exposure (few very-young and very-old
    // drive-days exist); the clean bathtub is the empirical hazard:
    // failures per million drive-days at each age.
    println!("  empirical hazard (failures / 1M drive-days, 60-day age buckets):");
    let exposure = fleet.age_exposure_days();
    let bucket = 60usize;
    let n_buckets = exposure.len().div_ceil(bucket);
    let mut fail_by_bucket = vec![0u64; n_buckets];
    for f in fleet.failures() {
        let ix = (f.age_at_failure_days.max(0) as usize / bucket).min(n_buckets - 1);
        fail_by_bucket[ix] += 1;
    }
    let mut hazard = Vec::new();
    for (i, &fails) in fail_by_bucket.iter().enumerate() {
        let expo: f64 = exposure[i * bucket..((i + 1) * bucket).min(exposure.len())]
            .iter()
            .sum();
        if expo < 1000.0 {
            continue; // too little exposure for a stable estimate
        }
        hazard.push((i * bucket, fails as f64 / expo * 1e6));
    }
    let peak = hazard.iter().map(|&(_, h)| h).fold(0.0f64, f64::max);
    for &(age, h) in &hazard {
        println!(
            "  age {:>4}-{:<4} d {:>8.1} {}",
            age,
            age + bucket,
            h,
            bar(h, peak, 40)
        );
    }
    // Bathtub check on the hazard: both ends elevated vs the useful-life
    // floor (the minimum bucket).
    let first = hazard.first().map_or(0.0, |&(_, h)| h);
    let mid = hazard.iter().map(|&(_, h)| h).fold(f64::INFINITY, f64::min);
    let last = hazard.last().map_or(0.0, |&(_, h)| h);
    println!("  bathtub check: infant={first:.1} useful-life floor={mid:.1} wearout={last:.1}");
    json!({
        "bin_max_hours": max,
        "counts": counts,
        "hazard_per_million_drive_days": hazard,
        "infant": first, "mid": mid, "wearout": last,
    })
}

/// Fig 3: per-firmware failure rate, oldest release first.
pub fn fig3(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 3 — failure rate per firmware version (earlier = higher)");
    let mut rows = Vec::new();
    let peak = fleet
        .firmware_stats()
        .iter()
        .map(|f| f.failure_rate())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for vendor in Vendor::ALL {
        for fs in fleet
            .firmware_stats()
            .iter()
            .filter(|f| f.firmware.vendor() == vendor)
        {
            println!(
                "  {:<7} (raw {:<6}) pop {:>7} fail {:>5} rate {:>7} {}",
                fs.firmware.label(),
                fs.firmware.raw(),
                fs.population,
                fs.failures,
                pct(fs.failure_rate()),
                bar(fs.failure_rate(), peak, 30)
            );
            rows.push(json!({
                "firmware": fs.firmware.label(),
                "population": fs.population,
                "failures": fs.failures,
                "rate": fs.failure_rate(),
            }));
        }
    }
    json!({ "rows": rows })
}

/// Fig 6: observation discontinuity among vendor I's faulty drives.
pub fn fig6(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 6 — telemetry discontinuity of faulty drives (vendor I)");
    let faulty: Vec<_> = fleet
        .drives()
        .iter()
        .filter(|d| d.vendor() == Vendor::I && d.truth().is_some())
        .collect();
    // Gap-length distribution.
    let mut gap_hist = [0u64; 5]; // 1, 2-3, 4-9, 10-19, 20+
    for d in &faulty {
        for g in d.history().gaps() {
            let ix = match g {
                1 => 0,
                2..=3 => 1,
                4..=9 => 2,
                10..=19 => 3,
                _ => 4,
            };
            gap_hist[ix] += 1;
        }
    }
    let labels = [
        "1d (continuous)",
        "2-3d (fillable)",
        "4-9d (tolerated)",
        "10-19d (dropped)",
        "20d+ (dropped)",
    ];
    let peak = *gap_hist.iter().max().unwrap_or(&1) as f64;
    for (label, &n) in labels.iter().zip(&gap_hist) {
        println!("  {:<18} {:>6} {}", label, n, bar(n as f64, peak, 40));
    }
    // Paper-style per-drive examples (first three faulty drives).
    let mut examples = Vec::new();
    for (i, d) in faulty.iter().take(3).enumerate() {
        let days: Vec<i64> = d
            .history()
            .observed_days()
            .iter()
            .map(|d| d.day())
            .collect();
        let head: Vec<i64> = days.iter().take(16).copied().collect();
        println!(
            "  F{} observed days: {:?}{}",
            i + 1,
            head,
            if days.len() > 16 { " …" } else { "" }
        );
        examples.push(json!({ "drive": format!("F{}", i + 1), "days": days }));
    }
    json!({ "gap_histogram": gap_hist.to_vec(), "n_faulty_vendor_i": faulty.len(), "examples": examples })
}
