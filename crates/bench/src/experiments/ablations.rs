//! Ablations of the design choices DESIGN.md calls out (§III-C(1)/(3)):
//! gap handling, cumulative counters, the under-sampling ratio and the
//! positive-window length.

use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::{metric_row, report_json, section};

fn rf_config() -> MfpaConfig {
    MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest)
}

/// Gap-drop / gap-fill constants (paper: drop ≥ 10, fill ≤ 3).
pub fn ablate_gaps(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Ablation — gap handling (drop_gap / fill_gap)");
    let mut rows = Vec::new();
    for (drop_gap, fill_gap) in [
        (5i64, 3i64),
        (10, 0),
        (10, 3),
        (10, 7),
        (20, 3),
        (10_000, 3),
    ] {
        let mut cfg = rf_config();
        cfg.preprocess.drop_gap = drop_gap;
        cfg.preprocess.fill_gap = fill_gap;
        match Mfpa::new(cfg).run(fleet) {
            Ok(r) => {
                let label = format!("drop≥{drop_gap} fill≤{fill_gap}");
                println!("  {}", metric_row(&label, &r));
                rows.push(json!({
                    "drop_gap": drop_gap, "fill_gap": fill_gap, "report": report_json(&r)
                }));
            }
            Err(e) => println!("  drop≥{drop_gap} fill≤{fill_gap}: error {e}"),
        }
    }
    println!("  paper choice: drop ≥ 10, fill ≤ 3");
    json!({ "rows": rows })
}

/// Cumulative vs daily W/B counters (§III-C(1)).
pub fn ablate_cumsum(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Ablation — cumulative vs daily W/B counters");
    let mut rows = Vec::new();
    for cumulative in [true, false] {
        let mut cfg = rf_config();
        cfg.preprocess.cumulative_events = cumulative;
        let r = Mfpa::new(cfg).run(fleet).expect("run");
        let label = if cumulative {
            "cumulative (paper)"
        } else {
            "daily counts"
        };
        println!("  {}", metric_row(label, &r));
        rows.push(json!({ "cumulative": cumulative, "report": report_json(&r) }));
    }
    println!("  paper: daily counts are too noisy to show trends — accumulate them");
    json!({ "rows": rows })
}

/// Under-sampling ratio (paper mentions 3:1 and 5:1).
pub fn ablate_ratio(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Ablation — negative:positive under-sampling ratio");
    let mut rows = Vec::new();
    for ratio in [Some(1.0), Some(3.0), Some(5.0), Some(10.0), None] {
        let cfg = rf_config().with_undersample_ratio(ratio);
        let label = match ratio {
            Some(r) => format!("{r}:1"),
            None => "no under-sampling".to_owned(),
        };
        match Mfpa::new(cfg).run(fleet) {
            Ok(r) => {
                println!("  {}", metric_row(&label, &r));
                rows.push(json!({ "ratio": ratio, "report": report_json(&r) }));
            }
            Err(e) => println!("  {label}: error {e}"),
        }
    }
    json!({ "rows": rows })
}

/// Positive-window length (paper: 7, 14 or 21 days).
pub fn ablate_window(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Ablation — positive-window length");
    let mut rows = Vec::new();
    for days in [7i64, 14, 21] {
        let cfg = rf_config().with_positive_window(days);
        let r = Mfpa::new(cfg).run(fleet).expect("run");
        println!("  {}", metric_row(&format!("{days}-day window"), &r));
        rows.push(json!({ "window_days": days, "report": report_json(&r) }));
    }
    json!({ "rows": rows })
}
