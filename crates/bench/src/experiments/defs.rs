//! Definitional tables (II–V): printed from the domain types so the
//! reproduction's vocabulary is auditable against the paper.

use mfpa_core::FeatureGroup;
use mfpa_telemetry::{BsodCode, SmartAttr, WindowsEventId};
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::section;

/// Table II: the 16 SMART attributes.
pub fn table2(_ctx: &Ctx) -> serde_json::Value {
    section("Table II — SMART attributes");
    for attr in SmartAttr::ALL {
        println!(
            "  {:<5} {:<42} {}",
            attr.to_string(),
            attr.name(),
            if attr.is_cumulative() {
                "(cumulative)"
            } else {
                "(gauge)"
            }
        );
    }
    json!({
        "attributes": SmartAttr::ALL.iter()
            .map(|a| json!({"id": a.id(), "name": a.name(), "cumulative": a.is_cumulative()}))
            .collect::<Vec<_>>()
    })
}

/// Table III: the tracked Windows events.
pub fn table3(_ctx: &Ctx) -> serde_json::Value {
    section("Table III — WindowsEvent logs");
    for ev in WindowsEventId::ALL {
        println!("  {:<6} {}", ev.to_string(), ev.description());
    }
    json!({
        "events": WindowsEventId::ALL.iter()
            .map(|e| json!({"id": e.id(), "description": e.description()}))
            .collect::<Vec<_>>()
    })
}

/// Table IV: the tracked BSOD stop codes.
pub fn table4(_ctx: &Ctx) -> serde_json::Value {
    section("Table IV — BlueScreenOfDeath stop codes");
    for code in BsodCode::ALL {
        println!(
            "  {:<7} {:<42} {}",
            code.to_string(),
            code.name(),
            if code.is_storage_related() {
                "(storage)"
            } else {
                ""
            }
        );
    }
    json!({
        "codes": BsodCode::ALL.iter()
            .map(|b| json!({"code": b.code(), "name": b.name(), "storage": b.is_storage_related()}))
            .collect::<Vec<_>>()
    })
}

/// Table V: feature-group widths.
pub fn table5(_ctx: &Ctx) -> serde_json::Value {
    section("Table V — feature groups");
    println!(
        "  {:<6} {:>6} {:>9} {:>13} {:>18}",
        "group", "SMART", "Firmware", "WindowsEvent", "BlueScreenOfDeath"
    );
    let mut rows = Vec::new();
    for g in FeatureGroup::ALL {
        let feats = g.features();
        let smart = feats
            .iter()
            .filter(|f| matches!(f, mfpa_core::FeatureId::Smart(_)))
            .count();
        let fw = feats
            .iter()
            .filter(|f| matches!(f, mfpa_core::FeatureId::Firmware))
            .count();
        let w = feats
            .iter()
            .filter(|f| matches!(f, mfpa_core::FeatureId::WinEventCum(_)))
            .count();
        let b = feats
            .iter()
            .filter(|f| matches!(f, mfpa_core::FeatureId::BsodCum(_)))
            .count();
        println!(
            "  {:<6} {:>6} {:>9} {:>13} {:>18}",
            g.name(),
            smart,
            fw,
            w,
            b
        );
        rows.push(json!({"group": g.name(), "smart": smart, "firmware": fw, "w": w, "b": b}));
    }
    json!({ "groups": rows })
}
