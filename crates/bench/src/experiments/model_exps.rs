//! Model-level reproductions: θ sensitivity (Fig 7), time-series
//! machinery ablation (Fig 8), feature groups (Fig 9/13), algorithms
//! (Fig 10/14), vendors (Fig 11/15), temporal stability (Fig 12/16),
//! feature selection (Fig 17), state-of-the-art comparison (Fig 18),
//! lookahead sweep (Fig 19) and stage overhead (Fig 20).

use mfpa_core::baselines::Baseline;
use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig, SplitStrategy};
use mfpa_dataset::cv::{kfold, time_series_cv};
use mfpa_fleetsim::SimulatedFleet;
use mfpa_ml::metrics::auc;
use mfpa_ml::Classifier;
use mfpa_telemetry::Vendor;
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::{metric_row, pct, report_json, section};

fn rf_config() -> MfpaConfig {
    MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest)
}

/// Fig 7 / §III-C(2): sensitivity of the θ labelling threshold.
pub fn fig7(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 7 — θ sensitivity (failure-time identification)");
    let mut rows = Vec::new();
    for theta in [1i64, 3, 5, 7, 10, 14] {
        let cfg = rf_config().with_theta(theta);
        match Mfpa::new(cfg).run(fleet) {
            Ok(r) => {
                println!("  θ={theta:<3} {}", metric_row("SFWB+RF", &r));
                rows.push(json!({ "theta": theta, "report": report_json(&r) }));
            }
            Err(e) => println!("  θ={theta:<3} error: {e}"),
        }
    }
    json!({ "rows": rows, "paper_choice": 7 })
}

/// Fig 8: naive split vs timepoint split, and k-fold vs time-series CV.
pub fn fig8(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 8 — time-series-based optimisation ablation");

    // (a) Sample segmentation.
    let naive = Mfpa::new(rf_config().with_split(SplitStrategy::Ratio { test_fraction: 0.3 }))
        .run(fleet)
        .expect("naive split run");
    let timed = Mfpa::new(rf_config())
        .run(fleet)
        .expect("timepoint split run");
    println!("  split (a): {}", metric_row("naive m:n ratio", &naive));
    println!("  split (a): {}", metric_row("timepoint-based", &timed));
    println!("    note: the naive split leaks future data into training — its test");
    println!("    numbers are optimistic, not better (the paper's point).");

    // (b) Cross-validation: mean fold AUC of an RF on the training window
    // under the two CV schemes. The k-fold estimate is inflated by
    // training on the future.
    let mfpa = Mfpa::new(rf_config());
    let prepared = mfpa.prepare(fleet).expect("prepare");
    let full = &prepared.samples().flat;
    // Balance to 6:1 for the CV comparison: the honest-vs-leaky contrast
    // is about fold construction, not class imbalance, and it keeps the
    // 8 RF fits fast.
    let kept = mfpa_dataset::RandomUnderSampler::new(6.0, 7)
        .expect("ratio")
        .sample(full.labels());
    let frame = full.select_rows(&kept);
    let times = frame.times();
    let sel: Vec<usize> = FeatureGroup::Sfwb.full_indices();
    let x = frame.matrix().select_cols(&sel);
    let y = frame.labels();

    let eval_folds = |folds: &[mfpa_dataset::cv::Fold]| -> f64 {
        let mut aucs = Vec::new();
        for fold in folds {
            let ty: Vec<bool> = fold.train.iter().map(|&i| y[i]).collect();
            let pos = ty.iter().filter(|&&l| l).count();
            if pos == 0 || pos == ty.len() {
                continue;
            }
            let vy: Vec<bool> = fold.validate.iter().map(|&i| y[i]).collect();
            let mut rf = mfpa_ml::RandomForest::new(40, 10).with_seed(5);
            rf.fit(&x.select_rows(&fold.train), &ty).expect("fit");
            let p = rf
                .predict_proba(&x.select_rows(&fold.validate))
                .expect("predict");
            aucs.push(auc(&vy, &p));
        }
        aucs.iter().sum::<f64>() / aucs.len().max(1) as f64
    };
    let kf = eval_folds(&kfold(frame.n_rows(), 4, 3).expect("kfold"));
    let ts = eval_folds(&time_series_cv(&times, 2).expect("ts cv"));
    println!("  CV (b): k-fold mean AUC      = {kf:.4} (leaks future → optimistic)");
    println!("  CV (b): time-series mean AUC = {ts:.4} (honest forward estimate)");

    json!({
        "naive_split": report_json(&naive),
        "timepoint_split": report_json(&timed),
        "kfold_auc": kf,
        "timeseries_cv_auc": ts,
    })
}

/// Fig 9/13: the seven feature groups under RF.
pub fn fig9(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 9/13 — feature-group comparison (RF)");
    let mut rows = Vec::new();
    for group in FeatureGroup::ALL {
        let cfg = MfpaConfig::new(group, Algorithm::RandomForest);
        let r = Mfpa::new(cfg).run(fleet).expect("group run");
        println!("  {}", metric_row(group.name(), &r));
        rows.push(json!({ "group": group.name(), "report": report_json(&r) }));
    }
    println!("  paper: SFWB 98.18% TPR / 0.56% FPR; SF 95.37% / 3.58%");
    json!({ "rows": rows })
}

/// Fig 10/14: the five algorithms on SFWB.
pub fn fig10(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 10/14 — algorithm portability (SFWB)");
    let mut rows = Vec::new();
    for algo in Algorithm::LEARNED {
        let cfg = MfpaConfig::new(FeatureGroup::Sfwb, algo);
        match Mfpa::new(cfg).run(fleet) {
            Ok(r) => {
                println!("  {}", metric_row(algo.name(), &r));
                rows.push(json!({ "algorithm": algo.name(), "report": report_json(&r) }));
            }
            Err(e) => println!("  {:<10} error: {e}", algo.name()),
        }
    }
    println!("  paper: RF best (98.18%/0.56%); CNN_LSTM hurt by discontinuity (94.74%/12.98%)");
    json!({ "rows": rows })
}

/// Fig 11/15: per-vendor models.
pub fn fig11(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 11/15 — vendor portability (SFWB+RF per vendor)");
    let mut rows = Vec::new();
    for vendor in Vendor::ALL {
        let cfg = rf_config().with_vendor(vendor);
        match Mfpa::new(cfg).run(fleet) {
            Ok(r) => {
                println!(
                    "  vendor {:<4} AUC={:.4} {}",
                    vendor.to_string(),
                    r.drive.auc,
                    metric_row("", &r)
                );
                rows.push(json!({ "vendor": vendor.to_string(), "report": report_json(&r) }));
            }
            Err(e) => {
                println!("  vendor {vendor:<4} error: {e}");
                rows.push(json!({ "vendor": vendor.to_string(), "error": e.to_string() }));
            }
        }
    }
    println!("  paper: I/II/III ≈ 98.8/96.9/97.4% AUC; IV poor (fewest faulty drives)");
    json!({ "rows": rows })
}

/// Fig 12/16: temporal stability — train once, predict for months
/// without retraining, on a drifting fleet.
pub fn fig12(ctx: &Ctx) -> serde_json::Value {
    section("Fig 12/16 — temporal stability without retraining (drifting fleet)");
    let cfg = ctx
        .base()
        .clone()
        .with_horizon_days(240)
        .with_drift_per_month(0.18);
    let fleet = SimulatedFleet::generate(&cfg);
    println!(
        "  drifting fleet: horizon=240d drift=0.18/month, drives={} failures={}",
        fleet.drives().len(),
        fleet.failures().len()
    );
    let mfpa = Mfpa::new(rf_config());
    let prepared = mfpa.prepare(&fleet).expect("prepare");
    let train_rows = prepared.rows_in_window(0, 60);
    let trained = mfpa.train_rows(&prepared, &train_rows).expect("train");
    let mut rows = Vec::new();
    for month in 2..8 {
        let lo = month * 30;
        let test_rows = prepared.rows_in_window(lo, lo + 30);
        if test_rows.is_empty() {
            continue;
        }
        let r = trained
            .evaluate_rows(&prepared, &test_rows, &format!("month {month}"))
            .expect("evaluate");
        println!(
            "  month {:<2} TPR={:>7} FPR={:>6} (drives: {} / {} faulty)",
            month,
            pct(r.drive.tpr()),
            pct(r.drive.fpr()),
            r.n_test_drives,
            r.n_failed_test_drives
        );
        rows.push(json!({ "month": month, "report": report_json(&r) }));
    }
    println!("  paper: TPR stable ~5 months; FPR creeps up by month 3 → iterate every 2-3 months");
    json!({ "rows": rows })
}

/// Fig 17: sequential forward selection over the SFWB columns.
pub fn fig17(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 17 — sequential forward selection (SFWB, RF)");
    let mfpa = Mfpa::new(rf_config());
    let prepared = mfpa.prepare(fleet).expect("prepare");
    let frame = &prepared.samples().flat;
    let times = frame.times();
    // Within the training window, hold out the last fifth (by time) as
    // the selection validation set.
    let train_split = mfpa_dataset::split::timepoint_split_fraction(&times, 0.7).expect("split");
    let inner_times: Vec<i64> = train_split.train.iter().map(|&i| times[i]).collect();
    let inner = mfpa_dataset::split::timepoint_split_fraction(&inner_times, 0.8).expect("inner");
    let sfs_train_all: Vec<usize> = inner.train.iter().map(|&i| train_split.train[i]).collect();
    let sfs_val: Vec<usize> = inner.test.iter().map(|&i| train_split.train[i]).collect();
    // Under-sample the SFS training rows (3:1) — the selection loop fits
    // hundreds of forests, and the pipeline trains balanced anyway.
    let labels_all: Vec<bool> = sfs_train_all.iter().map(|&i| frame.labels()[i]).collect();
    let kept = mfpa_dataset::RandomUnderSampler::new(3.0, 5)
        .expect("ratio")
        .sample(&labels_all);
    let sfs_train: Vec<usize> = kept.into_iter().map(|i| sfs_train_all[i]).collect();

    let features = FeatureGroup::Sfwb.features();
    let full = frame.matrix();
    let y = frame.labels();
    let val_y: Vec<bool> = sfs_val.iter().map(|&i| y[i]).collect();
    let train_y: Vec<bool> = sfs_train.iter().map(|&i| y[i]).collect();
    let score = |subset: &[usize]| -> f64 {
        let cols: Vec<usize> = subset.iter().map(|&s| features[s].full_index()).collect();
        let x = full.select_cols(&cols);
        let mut rf = mfpa_ml::RandomForest::new(25, 10).with_seed(9);
        if rf.fit(&x.select_rows(&sfs_train), &train_y).is_err() {
            return 0.0;
        }
        match rf.predict_proba(&x.select_rows(&sfs_val)) {
            Ok(p) => auc(&val_y, &p),
            Err(_) => 0.0,
        }
    };
    let result = mfpa_ml::select::sequential_forward_selection(features.len(), score, 12, 2e-5);

    // Re-evaluate each trace prefix on the real test split.
    let mut rows = Vec::new();
    for step in &result.trace {
        let cols: Vec<mfpa_core::FeatureId> = step.subset.iter().map(|&s| features[s]).collect();
        let cfg = rf_config().with_custom_columns(cols.clone());
        let r = Mfpa::new(cfg).run(fleet).expect("prefix run");
        println!(
            "  +{:<10} k={:<2} val_auc={:.4}  test: TPR={:>7} FPR={:>6}",
            features[step.added].to_string(),
            step.subset.len(),
            step.score,
            pct(r.drive.tpr()),
            pct(r.drive.fpr())
        );
        rows.push(json!({
            "added": features[step.added].to_string(),
            "k": step.subset.len(),
            "val_auc": step.score,
            "report": report_json(&r),
        }));
    }
    let selected: Vec<String> = result
        .selected
        .iter()
        .map(|&s| features[s].to_string())
        .collect();
    println!("  selected subset: {selected:?}");
    println!("  paper: TPR 0.926 → 0.9818, FPR 0.023 → 0.0056 through selection");
    json!({ "rows": rows, "selected": selected })
}

/// Fig 18: MFPA vs simplified state-of-the-art baselines.
pub fn fig18(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 18 — MFPA vs state-of-the-art (simplified reimplementations)");
    let mut rows = Vec::new();
    for baseline in Baseline::ALL {
        let cfg = baseline.config(21);
        match Mfpa::new(cfg).run(fleet) {
            Ok(r) => {
                println!("  {}", metric_row(baseline.name(), &r));
                rows.push(json!({ "baseline": baseline.name(), "report": report_json(&r) }));
            }
            Err(e) => println!("  {:<26} error: {e}", baseline.name()),
        }
    }
    json!({ "rows": rows })
}

/// Fig 19: TPR over the lookahead window N.
pub fn fig19(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 19 — lookahead window sweep (SFWB+RF)");
    let mut rows = Vec::new();
    for n in [0i64, 1, 3, 5, 7, 10, 14, 17, 20] {
        let cfg = rf_config().with_lookahead(n);
        match Mfpa::new(cfg).run(fleet) {
            Ok(r) => {
                println!(
                    "  N={:<3} TPR={:>7} FPR={:>6} AUC={:.4}",
                    n,
                    pct(r.drive.tpr()),
                    pct(r.drive.fpr()),
                    r.drive.auc
                );
                rows.push(json!({ "lookahead": n, "report": report_json(&r) }));
            }
            Err(e) => println!("  N={n:<3} error: {e}"),
        }
    }
    println!("  paper: ≈89% TPR at N=5; 55.66% at N=20");
    json!({ "rows": rows })
}

/// Fig 20: per-stage overhead of the standard SFWB+RF run.
pub fn fig20(ctx: &Ctx) -> serde_json::Value {
    let fleet = ctx.fleet();
    section("Fig 20 — per-stage overhead (SFWB+RF)");
    let r = Mfpa::new(rf_config()).run(fleet).expect("run");
    let t = &r.timings;
    println!("  {:<22} {:>12} {:>12}", "stage", "items", "seconds");
    println!(
        "  {:<22} {:>12} {:>12.3}",
        "feature engineering", t.n_raw_records, t.preprocess_secs
    );
    println!(
        "  {:<22} {:>12} {:>12.3}",
        "θ labelling", "-", t.labeling_secs
    );
    println!(
        "  {:<22} {:>12} {:>12.3}",
        "sample assembly",
        r.timings.n_train_rows + r.timings.n_test_rows,
        t.sampling_secs
    );
    println!(
        "  {:<22} {:>12} {:>12.3}",
        "model training", t.n_train_rows, t.train_secs
    );
    println!(
        "  {:<22} {:>12} {:>12.3}",
        "prediction", t.n_test_rows, t.predict_secs
    );
    println!(
        "  sample frames: {:.1} MiB | prediction latency: {:.1} µs/row",
        t.frame_bytes as f64 / (1024.0 * 1024.0),
        t.predict_micros_per_row()
    );
    println!("  paper: feature engineering dominates; µs-level per-drive prediction");
    json!({
        "n_raw_records": t.n_raw_records,
        "preprocess_secs": t.preprocess_secs,
        "labeling_secs": t.labeling_secs,
        "sampling_secs": t.sampling_secs,
        "train_secs": t.train_secs,
        "predict_secs": t.predict_secs,
        "predict_micros_per_row": t.predict_micros_per_row(),
        "frame_bytes": t.frame_bytes,
    })
}
