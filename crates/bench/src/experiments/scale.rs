//! Scale study: wall-clock of the parallel stages across worker counts,
//! with the determinism contract checked along the way.
//!
//! Every width regenerates the fleet and reruns the reference SFWB+RF
//! pipeline with `n_threads` forced, asserting the fleet and the
//! evaluation report are bit-identical to the single-worker reference —
//! the speedup table is only worth printing if the outputs cannot drift.

use std::time::Instant;

use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::SimulatedFleet;
use serde_json::json;

use crate::ctx::Ctx;
use crate::format::section;

/// Worker counts swept by the study.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Scale: deterministic parallel speedup across worker counts.
pub fn scale(ctx: &Ctx) -> serde_json::Value {
    section("Scale — deterministic parallelism (MFPA_THREADS)");
    println!(
        "  machine parallelism: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut reference: Option<(SimulatedFleet, mfpa_core::EvalReport)> = None;
    let mut rows = Vec::new();
    println!(
        "  {:>8} {:>12} {:>12} {:>10}",
        "workers", "fleet (s)", "pipeline (s)", "identical"
    );
    for n in WIDTHS {
        let t0 = Instant::now();
        let fleet = SimulatedFleet::generate(&ctx.base().clone().with_threads(n));
        let fleet_secs = t0.elapsed().as_secs_f64();

        let cfg = MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest).with_threads(n);
        let t1 = Instant::now();
        let report = match Mfpa::new(cfg).run(&fleet) {
            Ok(r) => r,
            Err(e) => {
                println!("  workers={n} pipeline error: {e}");
                rows.push(json!({ "n_threads": n, "error": e.to_string() }));
                continue;
            }
        };
        let pipeline_secs = t1.elapsed().as_secs_f64();

        let identical = match &reference {
            None => {
                reference = Some((fleet, report.clone()));
                true
            }
            Some((ref_fleet, ref_report)) => {
                let fleet_ok = fleet.drives() == ref_fleet.drives()
                    && fleet.failures() == ref_fleet.failures()
                    && fleet.tickets() == ref_fleet.tickets();
                let report_ok = report.sample.cm == ref_report.sample.cm
                    && report.drive.cm == ref_report.drive.cm
                    && report.sample.auc.to_bits() == ref_report.sample.auc.to_bits()
                    && report.drive.auc.to_bits() == ref_report.drive.auc.to_bits()
                    && report.timings.n_quarantined == ref_report.timings.n_quarantined
                    && report.timings.n_repaired == ref_report.timings.n_repaired;
                assert!(
                    fleet_ok && report_ok,
                    "worker count {n} changed the output (fleet_ok={fleet_ok} report_ok={report_ok})"
                );
                true
            }
        };
        println!("  {n:>8} {fleet_secs:>12.2} {pipeline_secs:>12.2} {identical:>10}");
        rows.push(json!({
            "n_threads": n,
            "fleet_secs": fleet_secs,
            "pipeline_secs": pipeline_secs,
            "identical": identical,
        }));
    }
    println!("  note: outputs are asserted bit-identical at every width; speedup");
    println!("  tracks the physical core count (a 1-core machine shows none).");
    json!({
        "machine_parallelism": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "rows": rows,
    })
}
