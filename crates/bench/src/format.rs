//! Small formatting helpers for experiment output.

use mfpa_core::EvalReport;

/// Prints a section banner.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// One metric row (drive-level) of a comparison table.
pub fn metric_row(label: &str, report: &EvalReport) -> String {
    format!(
        "{label:<28} TPR={:>7} FPR={:>6} ACC={:>7} PDR={:>6} AUC={:.4}",
        pct(report.drive.tpr()),
        pct(report.drive.fpr()),
        pct(report.drive.acc()),
        pct(report.drive.pdr()),
        report.drive.auc
    )
}

/// Serialises the drive/sample metric pair of a report for JSON output.
pub fn report_json(report: &EvalReport) -> serde_json::Value {
    serde_json::json!({
        "name": report.name,
        "drive": {
            "tpr": report.drive.tpr(),
            "fpr": report.drive.fpr(),
            "acc": report.drive.acc(),
            "pdr": report.drive.pdr(),
            "auc": report.drive.auc,
        },
        "sample": {
            "tpr": report.sample.tpr(),
            "fpr": report.sample.fpr(),
            "acc": report.sample.acc(),
            "pdr": report.sample.pdr(),
            "auc": report.sample.auc,
        },
        "n_test_drives": report.n_test_drives,
        "n_failed_test_drives": report.n_failed_test_drives,
    })
}

/// Renders a sparkline-style ASCII bar for quick shape checks.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9818), "98.18%");
        assert_eq!(pct(0.0), "0.00%");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
