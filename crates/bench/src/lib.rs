//! Experiment harness for the MFPA reproduction.
//!
//! Every table and figure of the paper's evaluation has a registered
//! experiment in [`experiments`]; the `repro` binary dispatches on the
//! experiment id (`repro fig9`, `repro all`, …) and prints both a
//! human-readable table and a machine-readable JSON line per experiment.
//! Criterion performance benches (Fig 20's overhead breakdown) live in
//! `benches/`.

pub mod ctx;
pub mod experiments;
pub mod format;

pub use ctx::Ctx;
pub use experiments::{all_experiments, Experiment};
