//! Shared experiment context: the fleet cache and scale knobs.

use std::sync::OnceLock;

use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

/// Context shared by all experiments in one `repro` invocation.
///
/// The default fleet is generated lazily and reused; experiments that
/// need a different fleet (e.g. the drift study) derive their own
/// configuration from [`Ctx::base`] so scale flags propagate.
#[derive(Debug)]
pub struct Ctx {
    base: FleetConfig,
    fleet: OnceLock<SimulatedFleet>,
}

impl Ctx {
    /// Creates a context from the base fleet configuration.
    pub fn new(base: FleetConfig) -> Self {
        Ctx {
            base,
            fleet: OnceLock::new(),
        }
    }

    /// The base fleet configuration (seed + scale knobs).
    pub fn base(&self) -> &FleetConfig {
        &self.base
    }

    /// The shared default fleet (generated on first use).
    pub fn fleet(&self) -> &SimulatedFleet {
        self.fleet.get_or_init(|| {
            eprintln!(
                "[fleet] generating: fraction={} boost={} horizon={}d seed={}",
                self.base.population_fraction,
                self.base.hazard_boost,
                self.base.horizon_days,
                self.base.seed
            );
            let t = std::time::Instant::now();
            let fleet = SimulatedFleet::generate(&self.base);
            eprintln!(
                "[fleet] ready in {:.1}s: population={} telemetry_drives={} failures={}",
                t.elapsed().as_secs_f64(),
                fleet.population(),
                fleet.drives().len(),
                fleet.failures().len()
            );
            fleet
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_cached() {
        let ctx = Ctx::new(FleetConfig::tiny(1).with_population_fraction(0.0005));
        let a = ctx.fleet() as *const _;
        let b = ctx.fleet() as *const _;
        assert_eq!(a, b);
    }
}
