//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment-id | all | list> [--seed N] [--fraction F]
//!       [--boost B] [--horizon D] [--json PATH]
//! ```
//!
//! Run `repro list` for the experiment ids; `repro all` regenerates
//! everything (this is what EXPERIMENTS.md records). `--json PATH`
//! appends one JSON line per experiment for machine consumption.
//! `repro lint` runs the workspace determinism lint (DESIGN.md §8)
//! twice through the incremental scan cache (cold, then warm),
//! refreshes the committed `results/lint_report.json` snapshot, and
//! records both wall times in `BENCH_PR10.json`.

use std::io::Write;

use mfpa_bench::{all_experiments, Ctx};
use mfpa_fleetsim::FleetConfig;

struct Args {
    targets: Vec<String>,
    seed: u64,
    fraction: Option<f64>,
    boost: Option<f64>,
    horizon: Option<i64>,
    json_path: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        targets: Vec::new(),
        seed: 42,
        fraction: None,
        boost: None,
        horizon: None,
        json_path: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                args.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--fraction" => {
                args.fraction = Some(
                    grab("--fraction")?
                        .parse()
                        .map_err(|e| format!("--fraction: {e}"))?,
                )
            }
            "--boost" => {
                args.boost = Some(
                    grab("--boost")?
                        .parse()
                        .map_err(|e| format!("--boost: {e}"))?,
                )
            }
            "--horizon" => {
                args.horizon = Some(
                    grab("--horizon")?
                        .parse()
                        .map_err(|e| format!("--horizon: {e}"))?,
                )
            }
            "--json" => args.json_path = Some(grab("--json")?),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.targets.push(other.to_owned()),
        }
    }
    if args.targets.is_empty() {
        args.targets.push("list".to_owned());
    }
    Ok(args)
}

/// Lints the workspace sources and refreshes `results/lint_report.json`.
/// Returns the process exit code (0 clean, 1 violations, 2 setup error).
///
/// The scan runs twice through the incremental cache — once cold (the
/// cache file is removed first) and once warm — and `BENCH_PR10.json`
/// records both, so the cache's payoff is a committed number instead
/// of a claim.
fn run_lint() -> i32 {
    let cwd = match std::env::current_dir() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cwd: {e}");
            return 2;
        }
    };
    let Some(root) = mfpa_lint::find_workspace_root(&cwd) else {
        eprintln!("error: no workspace Cargo.toml above {}", cwd.display());
        return 2;
    };
    let files = match mfpa_lint::collect_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let cache_path = root.join("target").join("mfpa-lint.cache");
    let _ = std::fs::remove_file(&cache_path);
    let mut bench_runs = Vec::new();
    let mut report = None;
    for mode in ["cold", "warm"] {
        let t0 = std::time::Instant::now();
        let (r, stats) = mfpa_lint::cache::lint_files_cached(
            &files,
            mfpa_lint::LintOptions::default(),
            &cache_path,
        );
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "[lint] {mode} scan: {:.1} ms ({} reused, {} rescanned)",
            wall_ms, stats.reused, stats.rescanned
        );
        bench_runs.push(serde_json::json!({
            "stage": "lint",
            "files": r.n_files,
            "findings": r.findings.len(),
            "wall_ms": wall_ms,
            "cache": {
                "mode": mode,
                "reused": stats.reused,
                "rescanned": stats.rescanned,
            },
        }));
        report = Some(r);
    }
    let report = report.expect("two runs happened");
    print!("{}", report.render_human());
    let snapshot_path = root.join("results").join("lint_report.json");
    let snapshot = mfpa_lint::pretty_json(&report.snapshot_json());
    if let Err(e) = std::fs::write(&snapshot_path, snapshot) {
        eprintln!("error: write {}: {e}", snapshot_path.display());
        return 2;
    }
    eprintln!("[lint] snapshot written to {}", snapshot_path.display());
    let bench = serde_json::Value::Array(bench_runs);
    let bench_path = root.join("BENCH_PR10.json");
    if let Err(e) = std::fs::write(&bench_path, format!("{bench}\n")) {
        eprintln!("error: write {}: {e}", bench_path.display());
        return 2;
    }
    eprintln!("[lint] timing written to {}", bench_path.display());
    i32::from(!report.is_clean())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let experiments = all_experiments();

    if args.targets.iter().any(|t| t == "list") {
        println!("available experiments:");
        for e in &experiments {
            println!("  {:<14} {}", e.id, e.title);
        }
        println!("  {:<14} run every experiment above", "all");
        println!(
            "  {:<14} workspace determinism lint (DESIGN.md \u{a7}8)",
            "lint"
        );
        return;
    }

    if args.targets.iter().any(|t| t == "lint") {
        if args.targets.len() > 1 {
            eprintln!("error: `repro lint` does not combine with experiment ids");
            std::process::exit(2);
        }
        std::process::exit(run_lint());
    }

    let mut base = FleetConfig::new(args.seed);
    if let Some(f) = args.fraction {
        base = base.with_population_fraction(f);
    }
    if let Some(b) = args.boost {
        base = base.with_hazard_boost(b);
    }
    if let Some(h) = args.horizon {
        base = base.with_horizon_days(h);
    }
    let ctx = Ctx::new(base);

    let selected: Vec<_> = if args.targets.iter().any(|t| t == "all") {
        experiments.iter().collect()
    } else {
        let mut sel = Vec::new();
        for t in &args.targets {
            match experiments.iter().find(|e| e.id == *t) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("error: unknown experiment '{t}' (try `repro list`)");
                    std::process::exit(2);
                }
            }
        }
        sel
    };

    let mut json_out = args.json_path.as_ref().map(|p| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
            .unwrap_or_else(|e| panic!("cannot open {p}: {e}"))
    });

    for e in selected {
        let t0 = std::time::Instant::now();
        let value = (e.run)(&ctx);
        eprintln!("[{}] done in {:.1}s", e.id, t0.elapsed().as_secs_f64());
        if let Some(f) = json_out.as_mut() {
            let line = serde_json::json!({ "id": e.id, "title": e.title, "result": value });
            writeln!(f, "{line}").expect("write json line");
        }
    }
}
