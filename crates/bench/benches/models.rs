//! Model fit/predict throughput for the five MFPA algorithms on a fixed
//! synthetic task (the per-model slice of Fig 20's training/prediction
//! overhead).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use mfpa_dataset::Matrix;
use mfpa_ml::{Classifier, CnnLstm, GaussianNb, Gbdt, LinearSvm, RandomForest};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A 600-row, 45-feature task with 10 informative columns.
fn task(seed: u64) -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for i in 0..600 {
        let pos = i % 4 == 0;
        let mut row = Vec::with_capacity(45);
        for f in 0..45 {
            let signal = if pos && f < 10 { 2.0 } else { 0.0 };
            row.push(signal + rng.random_range(-1.0..1.0));
        }
        rows.push(row);
        y.push(pos);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn bench_fit(c: &mut Criterion) {
    let (x, y) = task(1);
    let mut group = c.benchmark_group("fit");
    group.sample_size(10);
    group.bench_function("bayes", |b| {
        b.iter(|| {
            let mut m = GaussianNb::new().with_log1p(true);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.bench_function("svm", |b| {
        b.iter(|| {
            let mut m = LinearSvm::new(1e-3, 10).with_seed(2);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.bench_function("random_forest_40x10", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(40, 10).with_seed(2);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.bench_function("gbdt_50x3", |b| {
        b.iter(|| {
            let mut m = Gbdt::new(50, 0.2, 3).with_seed(2);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.bench_function("cnn_lstm_5x9_3epochs", |b| {
        // 45 columns = 5 steps × 9 features for the sequence model.
        b.iter(|| {
            let mut m = CnnLstm::new(5, 9).with_epochs(3).with_seed(2);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.finish();
}

/// Histogram (default `max_bins` = 256) vs exact (`max_bins` = 0) split
/// search on the same task — the PR-3 speedup, benchmarkable in
/// isolation via `cargo bench --bench models -- hist`.
fn bench_hist(c: &mut Criterion) {
    let (x, y) = task(1);
    let mut group = c.benchmark_group("hist");
    group.sample_size(10);
    group.bench_function("gbdt_50x3_binned", |b| {
        b.iter(|| {
            let mut m = Gbdt::new(50, 0.2, 3).with_seed(2);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.bench_function("gbdt_50x3_exact", |b| {
        b.iter(|| {
            let mut m = Gbdt::new(50, 0.2, 3).with_seed(2).with_max_bins(0);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.bench_function("random_forest_40x10_binned", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(40, 10).with_seed(2);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.bench_function("random_forest_40x10_exact", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(40, 10).with_seed(2).with_max_bins(0);
            m.fit(black_box(&x), black_box(&y)).unwrap();
            black_box(m)
        })
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = task(1);
    let mut rf = RandomForest::new(120, 12).with_seed(3);
    rf.fit(&x, &y).unwrap();
    let mut group = c.benchmark_group("predict");
    group.bench_function("random_forest_120x12_600rows", |b| {
        b.iter(|| black_box(rf.predict_proba(black_box(&x)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_hist, bench_predict);
criterion_main!(benches);
