//! Fleet-generation throughput: how fast the synthetic CSS substrate
//! produces population draws, telemetry histories and tickets.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

fn bench_fleet_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleetsim");
    group.sample_size(10);

    group.bench_function("generate_tiny_fleet", |b| {
        let cfg = FleetConfig::tiny(3);
        b.iter(|| black_box(SimulatedFleet::generate(black_box(&cfg))));
    });

    group.bench_function("population_draws_only", |b| {
        // Telemetry lottery with a zero healthy ratio isolates the
        // population-scale hazard draws.
        let cfg = FleetConfig::tiny(3).with_healthy_per_failure(0.0);
        b.iter(|| black_box(SimulatedFleet::generate(black_box(&cfg))));
    });

    group.finish();
}

criterion_group!(benches, bench_fleet_generation);
criterion_main!(benches);
