//! End-to-end MFPA pipeline stage costs (the Criterion counterpart of
//! Fig 20): preprocessing, labelling + sampling, and a full run.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use mfpa_core::preprocess::{preprocess, PreprocessConfig};
use mfpa_core::{Algorithm, FeatureGroup, Mfpa, MfpaConfig};
use mfpa_fleetsim::{FleetConfig, SimulatedFleet};

fn bench_pipeline(c: &mut Criterion) {
    let fleet = SimulatedFleet::generate(&FleetConfig::tiny(9));
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("preprocess_all_drives", |b| {
        let cfg = PreprocessConfig::default();
        b.iter(|| {
            let n = fleet
                .drives()
                .iter()
                .filter_map(|d| preprocess(d.history(), d.firmware(), &cfg))
                .count();
            black_box(n)
        })
    });

    group.bench_function("prepare_sfwb", |b| {
        let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
        b.iter(|| black_box(mfpa.prepare(black_box(&fleet)).unwrap().n_rows()))
    });

    group.bench_function("train_eval_sfwb_rf", |b| {
        let mfpa = Mfpa::new(MfpaConfig::new(FeatureGroup::Sfwb, Algorithm::RandomForest));
        let prepared = mfpa.prepare(&fleet).unwrap();
        let split =
            mfpa_dataset::split::timepoint_split_fraction(&prepared.samples().flat.times(), 0.7)
                .unwrap();
        b.iter(|| {
            let trained = mfpa.train_rows(&prepared, &split.train).unwrap();
            let report = trained
                .evaluate_rows(&prepared, &split.test, "bench")
                .unwrap();
            black_box(report.drive.auc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
